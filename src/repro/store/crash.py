"""Kill-anywhere crash harness behind ``chisel-repro crash``.

Two campaigns, one inviolable gate — a recovered router must never serve
a silently-wrong lookup:

**Kill matrix.**  A deterministic writer workload (synthetic table,
synthesized update trace, periodic checkpoints) runs in a forked child
with a crashpoint hook that calls ``os._exit`` at the Nth durability
boundary — every ``log:*`` and ``ckpt:*`` point the store exposes, so
the writer dies mid-append, mid-fsync, between tmp write and rename,
after rename before directory fsync, mid-rotation and mid-prune.  The
parent then cold-starts from whatever the child left on disk and gates:

* recovery reaches at least the sequence number that was durable when
  the child died (acknowledged updates are never lost);
* probe lookups at the recovered sequence number match a golden
  single-process router replayed to the same point;
* catching the recovered router up with the remaining trace yields a
  hardware image byte-identical (bidirectional ``HardwareImage.diff``)
  to the golden end state — replay converges, it does not drift.

A boot that *refuses* (``RecoveryError``) is only acceptable while no
checkpoint had ever been renamed into place — before that there is
nothing durable to recover, which is the documented bootstrap case.

**Corruption matrix.**  A completed writer directory is copied per case
and damaged with :mod:`repro.faults.fileinject` — torn final record,
duplicated final record, truncated newest checkpoint, bit-flipped
checkpoint payload, bit flip mid-log, every checkpoint corrupted — and
the same gates apply, plus per-case shape checks (a duplicate must be
skipped, checkpoint damage must fall back, total damage must be
*detected*, never served).

Everything is seeded; two runs of the harness make identical kills and
identical verdicts.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.image import HardwareImage
from ..router.fib import ForwardingEngine
from ..router.nexthop import NextHopInfo
from ..serve.snapshot import SnapshotRouter
from ..workloads import synthetic_table
from ..workloads.traces import synthesize_trace
from .boot import RecoveryError, cold_start
from .checkpoint import CHECKPOINT_MAGIC
from .crashpoints import set_crashpoint_hook
from .store import (
    CheckpointPolicy,
    SnapshotStore,
    checkpoint_path,
    list_generations,
    log_path,
)

#: Child exit code for an intentional kill (distinguishes "harness shot
#: the writer" from organic crashes).
KILL_EXIT = 137

_ANNOUNCE = "announce"


@dataclass
class CrashReport:
    """Outcome of one crash campaign, with acceptance gates attached."""

    kill_points: int = 0
    kills_delivered: int = 0
    boots: int = 0
    boots_refused: int = 0
    refusals_legitimate: int = 0
    seq_regressions: int = 0
    wrong_answers: int = 0
    lookups_checked: int = 0
    divergent_replays: int = 0
    fallbacks: int = 0
    torn_tails: int = 0
    duplicates_skipped: int = 0
    corruption_cases: int = 0
    corruption_passed: int = 0
    kill_tags: List[str] = field(default_factory=list)
    case_results: Dict[str, str] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def evaluate(self) -> None:
        """Apply the acceptance gates; failures land in ``self.failures``."""
        self.failures = []
        if self.kills_delivered < self.kill_points:
            self.failures.append(
                f"only {self.kills_delivered} of {self.kill_points} kills "
                f"were delivered at a crashpoint"
            )
        if self.wrong_answers:
            self.failures.append(
                f"{self.wrong_answers} silently-wrong lookups (of "
                f"{self.lookups_checked}) after recovery — the one "
                f"inviolable contract"
            )
        if self.seq_regressions:
            self.failures.append(
                f"{self.seq_regressions} boots recovered fewer updates "
                f"than were durable at the kill"
            )
        if self.divergent_replays:
            self.failures.append(
                f"{self.divergent_replays} recovered routers diverged "
                f"from the golden image after catch-up"
            )
        if self.boots_refused > self.refusals_legitimate:
            self.failures.append(
                f"{self.boots_refused - self.refusals_legitimate} boots "
                f"refused with durable state on disk"
            )
        if self.corruption_passed < self.corruption_cases:
            failed = sorted(
                name for name, verdict in self.case_results.items()
                if verdict != "ok"
            )
            self.failures.append(
                f"corruption cases failed: {', '.join(failed)}"
            )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            name: getattr(self, name)
            for name in (
                "kill_points", "kills_delivered", "boots", "boots_refused",
                "refusals_legitimate", "seq_regressions", "wrong_answers",
                "lookups_checked", "divergent_replays", "fallbacks",
                "torn_tails", "duplicates_skipped", "corruption_cases",
                "corruption_passed",
            )
        }
        payload["case_results"] = dict(sorted(self.case_results.items()))
        payload["ok"] = self.ok
        payload["failures"] = list(self.failures)
        return payload


@dataclass
class _Workload:
    """The deterministic writer workload both child and golden replay."""

    table_size: int
    updates: int
    seed: int
    every_records: int
    probes: int = 64

    def table(self):
        return synthetic_table(self.table_size, seed=self.seed)

    def ops(self) -> List[Tuple[str, Any, str, str]]:
        table = self.table()
        trace = synthesize_trace(table, self.updates, seed=self.seed + 1)
        ops: List[Tuple[str, Any, str, str]] = []
        for op in trace:
            if op.op == _ANNOUNCE:
                ops.append((_ANNOUNCE, op.prefix,
                            f"10.9.{op.next_hop % 256}.1",
                            f"eth{op.next_hop % 8}"))
            else:
                ops.append(("withdraw", op.prefix, "", ""))
        return ops

    def probe_keys(self) -> List[int]:
        import random

        rng = random.Random(self.seed + 2)
        return [rng.getrandbits(32) for _ in range(self.probes)]


def _build_router(workload: _Workload) -> SnapshotRouter:
    fib = ForwardingEngine.from_table(workload.table())
    return SnapshotRouter(fib)


def _apply(router: SnapshotRouter, op: Tuple[str, Any, str, str]) -> None:
    kind, prefix, gateway, interface = op
    if kind == _ANNOUNCE:
        router.announce(prefix, gateway, interface)
    else:
        router.withdraw(prefix)


def _resolved(router: SnapshotRouter, keys: List[int]) -> List[
        Optional[NextHopInfo]]:
    """Probe answers as interned infos (stable across id reallocation)."""
    answers = router.lookup_many(keys)
    return [
        None if answer is None else router.fib.next_hops.resolve(answer)
        for answer in answers
    ]


def writer_workload(directory: str, workload: _Workload) -> None:
    """The child body: create a store and push the whole trace through it.

    Module-level and hook-free so the kill logic stays in the caller;
    with a crashpoint hook installed this never returns past the kill.
    """
    router = _build_router(workload)
    store = SnapshotStore.create(
        directory, router,
        policy=CheckpointPolicy(every_records=workload.every_records,
                                retain=2),
        sync=True,
    )
    for op in workload.ops():
        _apply(router, op)
        store.maybe_checkpoint()
    store.close()


def enumerate_crashpoints(
        workload: _Workload) -> Tuple[List[Tuple[str, int, bool]], str]:
    """Dry-run the writer, recording every crashpoint it passes.

    Returns ``(points, directory)`` where each point is
    ``(tag, durable_seq, checkpoint_durable)`` — the conservative
    durable sequence number and whether any checkpoint had been renamed
    into place when that point fired — plus the completed store
    directory (reused as the pristine source for the corruption matrix).
    """
    directory = tempfile.mkdtemp(prefix="chz-crash-golden-")
    points: List[Tuple[str, int, bool]] = []
    state = {"store": None, "renamed": False}

    def recorder(tag: str) -> None:
        store: Optional[SnapshotStore] = state["store"]
        durable = store.durable_seq if store is not None else 0
        points.append((tag, durable, state["renamed"]))
        if tag == "ckpt:renamed":
            state["renamed"] = True

    set_crashpoint_hook(recorder)
    try:
        router = _build_router(workload)
        store = SnapshotStore.create(
            directory, router,
            policy=CheckpointPolicy(every_records=workload.every_records,
                                    retain=2),
            sync=True,
        )
        state["store"] = store
        for op in workload.ops():
            _apply(router, op)
            store.maybe_checkpoint()
        store.close()
    finally:
        set_crashpoint_hook(None)
    return points, directory


def _run_killed_writer(directory: str, workload: _Workload,
                       kill_index: int) -> int:
    """Fork a writer that dies at crashpoint ``kill_index``; exit code."""
    import multiprocessing

    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    process = context.Process(
        target=_killed_writer_main,
        args=(directory, workload, kill_index),
        name=f"chisel-crash-writer-{kill_index}",
    )
    process.start()
    process.join(timeout=120.0)
    if process.is_alive():  # pragma: no cover - hang safety net
        process.terminate()
        process.join(timeout=5.0)
        return -1
    return process.exitcode if process.exitcode is not None else -1


def _killed_writer_main(directory: str, workload: _Workload,
                        kill_index: int) -> None:
    """Child entry point: install the kill hook, run the writer."""
    counter = {"index": 0}

    def killer(tag: str) -> None:
        index = counter["index"]
        counter["index"] = index + 1
        if index == kill_index:
            # _exit skips every finally/atexit/flush: buffered bytes die
            # with the process, OS-visible bytes survive — the same
            # visibility cut a SIGKILL produces.
            os._exit(KILL_EXIT)

    set_crashpoint_hook(killer)
    writer_workload(directory, workload)


def _golden_states(workload: _Workload) -> Tuple[
        List[List[Optional[NextHopInfo]]], HardwareImage]:
    """Probe answers at every sequence number, and the final image."""
    router = _build_router(workload)
    keys = workload.probe_keys()
    answers = [_resolved(router, keys)]
    for op in workload.ops():
        _apply(router, op)
        answers.append(_resolved(router, keys))
    return answers, HardwareImage.snapshot(router.fib.engine)


def _verify_recovery(directory: str, workload: _Workload,
                     golden_answers: List[List[Optional[NextHopInfo]]],
                     golden_final: HardwareImage,
                     min_seq: int, report: CrashReport,
                     context: str) -> Optional[str]:
    """Boot from ``directory`` and apply every gate; None means passed."""
    try:
        result = cold_start(directory, sync=True, retries=1, backoff=0.0)
    except RecoveryError as error:
        return f"{context}: recovery refused: {error}"
    report.boots += 1
    boot_report = result.report
    report.fallbacks += boot_report.fallbacks
    report.torn_tails += int(boot_report.torn_tail)
    report.duplicates_skipped += boot_report.duplicates_skipped
    try:
        seq = boot_report.seq
        if seq < min_seq:
            report.seq_regressions += 1
            return (f"{context}: recovered seq {seq} below durable "
                    f"seq {min_seq}")
        if seq >= len(golden_answers):
            return (f"{context}: recovered seq {seq} beyond the "
                    f"{len(golden_answers) - 1}-update trace")
        keys = workload.probe_keys()
        served = _resolved(result.router, keys)
        report.lookups_checked += len(keys)
        wrong = sum(
            1 for got, want in zip(served, golden_answers[seq])
            if got != want
        )
        if wrong:
            report.wrong_answers += wrong
            return (f"{context}: {wrong}/{len(keys)} probe lookups "
                    f"diverge from golden at seq {seq}")
        # Catch-up: the remaining trace must drive the recovered FIB to
        # the exact golden end state — replay converges, never drifts.
        for op in workload.ops()[seq:]:
            _apply(result.router, op)
        recovered = HardwareImage.snapshot(result.router.fib.engine)
        forward = golden_final.diff(recovered)
        backward = recovered.diff(golden_final)
        if (forward.writes or forward.deletions
                or backward.writes or backward.deletions):
            report.divergent_replays += 1
            words = len(forward.writes) + len(backward.writes)
            dels = len(forward.deletions) + len(backward.deletions)
            return (f"{context}: caught-up image differs from golden "
                    f"({words} words, {dels} deletions)")
    finally:
        result.store.close()
        if result.checkpoint is not None:
            result.checkpoint.close()
    return None


def run_kill_matrix(workload: _Workload, report: CrashReport,
                    keep_dirs: bool = False) -> None:
    """Kill the writer at every crashpoint and gate every recovery."""
    points, golden_dir = enumerate_crashpoints(workload)
    shutil.rmtree(golden_dir, ignore_errors=True)
    golden_answers, golden_final = _golden_states(workload)
    report.kill_points = len(points)
    for kill_index, (tag, durable_seq, renamed) in enumerate(points):
        directory = tempfile.mkdtemp(prefix="chz-crash-kill-")
        try:
            exitcode = _run_killed_writer(directory, workload, kill_index)
            if exitcode != KILL_EXIT:
                report.failures.append(
                    f"kill {kill_index} ({tag}): writer exited "
                    f"{exitcode}, expected {KILL_EXIT}"
                )
                continue
            report.kills_delivered += 1
            report.kill_tags.append(tag)
            failure = _verify_recovery(
                directory, workload, golden_answers, golden_final,
                durable_seq, report, context=f"kill {kill_index} ({tag})",
            )
            if failure is not None:
                if "recovery refused" in failure and not renamed:
                    # No checkpoint had ever been renamed into place:
                    # refusing to boot is the correct, documented outcome
                    # (bootstrap path in production).
                    report.boots_refused += 1
                    report.refusals_legitimate += 1
                else:
                    if "recovery refused" in failure:
                        report.boots_refused += 1
                    report.failures.append(failure)
        finally:
            if not keep_dirs:
                shutil.rmtree(directory, ignore_errors=True)


def run_corruption_matrix(workload: _Workload, report: CrashReport) -> None:
    """Damage a completed store directory in every modeled way."""
    from ..faults.fileinject import (
        duplicate_final_record,
        flip_file_bit,
        torn_final_record,
        truncate_file,
    )

    from .deltalog import scan_frames

    source = tempfile.mkdtemp(prefix="chz-crash-src-")
    try:
        writer_workload(source, workload)
        golden_answers, golden_final = _golden_states(workload)
        generations = list_generations(source)
        newest = generations[-1]
        if not scan_frames(log_path(source, newest)):
            raise ValueError(
                f"corruption matrix needs a non-empty newest log: choose "
                f"updates ({workload.updates}) not divisible by the "
                f"checkpoint period ({workload.every_records}) so the "
                f"trace leaves a replayable tail"
            )

        def newest_ckpt(directory: str) -> str:
            return checkpoint_path(directory, newest)

        def newest_log(directory: str) -> str:
            return log_path(directory, newest)

        def payload_offset(path: str) -> int:
            # Aim past the JSON header into table payload so the damage
            # lands on checksummed bytes, not on the parse path.
            size = os.path.getsize(path)
            return min(8 + len(CHECKPOINT_MAGIC) + 4096, size - 1)

        cases = {
            "torn-final-record": lambda d: torn_final_record(newest_log(d)),
            "duplicate-final-record":
                lambda d: duplicate_final_record(newest_log(d)),
            "truncated-checkpoint":
                lambda d: truncate_file(
                    newest_ckpt(d), os.path.getsize(newest_ckpt(d)) // 2),
            "bitflip-checkpoint":
                lambda d: flip_file_bit(
                    newest_ckpt(d), payload_offset(newest_ckpt(d)), 3),
            "bitflip-midlog":
                lambda d: _flip_midlog(d, newest, flip_file_bit),
            "all-checkpoints-corrupt":
                lambda d: [
                    truncate_file(checkpoint_path(d, generation), 16)
                    for generation in list_generations(d)
                ],
        }
        report.corruption_cases = len(cases)
        for name, damage in cases.items():
            directory = tempfile.mkdtemp(prefix=f"chz-crash-{name}-")
            try:
                shutil.rmtree(directory)
                shutil.copytree(source, directory)
                damage(directory)
                verdict = _corruption_verdict(
                    name, directory, workload, golden_answers, golden_final,
                    report,
                )
                report.case_results[name] = verdict
                if verdict == "ok":
                    report.corruption_passed += 1
            finally:
                shutil.rmtree(directory, ignore_errors=True)
    finally:
        shutil.rmtree(source, ignore_errors=True)


def _flip_midlog(directory: str, newest: int, flip) -> int:
    """Flip a bit in a durable mid-log record (not the final frame)."""
    from .deltalog import scan_frames

    path = log_path(directory, newest)
    frames = scan_frames(path)
    if len(frames) < 2:
        # Not enough frames in the newest log; damage the first frame —
        # still strictly before EOF if another frame follows, otherwise
        # the case degenerates to a torn tail, which replay also handles.
        target = frames[0] if frames else (16, 9)
    else:
        target = frames[len(frames) // 2]
    offset, total = target
    return flip(path, offset + total // 2, 5)


def _corruption_verdict(name: str, directory: str, workload: _Workload,
                        golden_answers: List[List[Optional[NextHopInfo]]],
                        golden_final: HardwareImage,
                        report: CrashReport) -> str:
    if name == "all-checkpoints-corrupt":
        # Every checkpoint is damaged: the only correct outcomes are
        # detect-and-refuse (no bootstrap) — never serving from a
        # corrupt image.
        try:
            result = cold_start(directory, sync=True, retries=1,
                                backoff=0.0)
        except RecoveryError:
            report.boots_refused += 1
            report.refusals_legitimate += 1
            return "ok"
        result.store.close()
        if result.checkpoint is not None:
            result.checkpoint.close()
        return "served despite every checkpoint being corrupt"
    failure = _verify_recovery(
        directory, workload, golden_answers, golden_final,
        min_seq=0, report=report, context=f"corruption {name}",
    )
    if failure is not None:
        return failure
    return "ok"


def run_crash(table_size: int = 600, updates: int = 50,
              every_records: int = 12, seed: int = 7,
              probes: int = 64, kill_matrix: bool = True,
              corruption_matrix: bool = True) -> CrashReport:
    """Run the crash campaign(s) and return the evaluated report."""
    workload = _Workload(
        table_size=table_size, updates=updates, seed=seed,
        every_records=every_records, probes=probes,
    )
    report = CrashReport()
    if kill_matrix:
        run_kill_matrix(workload, report)
    if corruption_matrix:
        run_corruption_matrix(workload, report)
    report.evaluate()
    return report
