"""Deterministic crash-injection points for the persistence layer.

The store calls :func:`crashpoint` at every durability boundary — before
and after each log-frame write, around every fsync, and at each step of
the checkpoint tmp-write/rename/directory-fsync protocol.  In production
the hook is ``None`` and the call is a single attribute read; under the
``chisel-repro crash`` harness the hook counts points and hard-kills the
writer process (``os._exit``) at a chosen one, leaving the file system
in exactly the state a power cut at that boundary would — buffered bytes
flushed to the OS survive, everything after the kill point does not.

Tags are stable identifiers (``log:torn``, ``ckpt:renamed``, ...); the
harness enumerates them by running the workload once with a counting
hook.
"""

from __future__ import annotations

from typing import Callable, Optional

Hook = Callable[[str], None]

_hook: Optional[Hook] = None


def set_crashpoint_hook(hook: Optional[Hook]) -> None:
    """Install (or clear) the process-wide crash-injection hook."""
    global _hook
    _hook = hook


def crashpoint(tag: str) -> None:
    """Announce a durability boundary; the harness may never return."""
    if _hook is not None:
        _hook(tag)
