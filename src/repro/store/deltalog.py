"""Append-only CRC-framed delta log with fsync discipline.

File layout::

    [16-byte header: b"CHZLOG1\\0" + u64 generation]
    [frame]*            frame = [u32 payload length][u32 crc32][payload]

The writer appends a frame, flushes, and fsyncs before acknowledging
(``sync="always"``); :func:`crashpoint` markers bracket every boundary
so the crash harness can kill at each one.  Replay walks frames from the
start and stops at the first damage, classifying it:

``torn``
    the final frame is incomplete (length field or payload ran off the
    end of the file) — the expected signature of a crash mid-append;
    the valid prefix is intact and the torn bytes were never durable.
``corrupt``
    a CRC or payload-decode failure with more data after it (bit rot in
    a durable record), or a sequence gap.  Replay refuses to skip over
    it — records after unreadable damage cannot be trusted to chain.
``ok``
    every frame read back clean.

Duplicated frames (the crash-recovery double-append case: a record was
durable but the writer died before recording that fact) are detected by
sequence number and skipped, never re-applied.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .crashpoints import crashpoint
from .records import LogRecord, RecordDecodeError, decode_record

_LOG_MAGIC = b"CHZLOG1\0"
_HEADER = struct.Struct("<8sQ")
_FRAME = struct.Struct("<II")

#: Split point for the two-phase frame write: bytes flushed before the
#: ``log:torn`` crashpoint.  Killing there leaves a genuinely torn frame.
_TORN_SPLIT = 6


class LogCorruptionError(RuntimeError):
    """A log file failed structural validation beyond a torn tail."""


@dataclass
class LogReplay:
    """The readable prefix of one log file."""

    generation: int
    records: List[LogRecord] = field(default_factory=list)
    status: str = "ok"  # ok | torn | corrupt | missing | bad-header
    detail: str = ""
    valid_length: int = 0
    frames: int = 0
    duplicates_skipped: int = 0

    @property
    def clean(self) -> bool:
        return self.status == "ok"

    @property
    def damaged(self) -> bool:
        return self.status in ("corrupt", "bad-header")


class DeltaLog:
    """Single-writer append handle over one log file."""

    def __init__(self, path: str, generation: int, sync: bool = True,
                 _handle: Optional[object] = None) -> None:
        self.path = path
        self.generation = generation
        self.sync = sync
        if _handle is not None:
            self._file = _handle
        else:
            self._file = open(path, "ab")
        self._closed = False

    @classmethod
    def create(cls, path: str, generation: int,
               sync: bool = True) -> "DeltaLog":
        """Create a fresh log with a durable header.

        The header is fsynced before the caller proceeds, so a log that
        exists with a readable header has existed durably — a torn
        header can only mean a crash before any record was appended.
        """
        handle = open(path, "wb")
        handle.write(_HEADER.pack(_LOG_MAGIC, generation))
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        return cls(path, generation, sync=sync)

    @classmethod
    def open_append(cls, path: str, generation: int, valid_length: int,
                    sync: bool = True) -> "DeltaLog":
        """Reopen an existing log for appending after replay.

        ``valid_length`` is the replayed-clean byte count; anything after
        it (a torn tail) is truncated away so new frames chain onto the
        valid prefix instead of hiding behind garbage.
        """
        handle = open(path, "r+b")
        handle.truncate(valid_length)
        handle.seek(0, os.SEEK_END)
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, generation, sync=sync, _handle=handle)

    def append(self, payload: bytes) -> None:
        """Frame, write and (optionally) fsync one record payload.

        The frame is written in two flushed chunks with a crashpoint
        between them: a kill at ``log:torn`` leaves a real torn frame on
        disk, exactly what a power cut mid-write produces.
        """
        if self._closed:
            raise ValueError(f"log {self.path} is closed")
        frame = _FRAME.pack(len(payload),
                            zlib.crc32(payload) & 0xFFFFFFFF) + payload
        crashpoint("log:append-pre")
        split = min(_TORN_SPLIT, len(frame) - 1)
        self._file.write(frame[:split])
        self._file.flush()
        crashpoint("log:torn")
        self._file.write(frame[split:])
        self._file.flush()
        crashpoint("log:written")
        if self.sync:
            os.fsync(self._file.fileno())
            crashpoint("log:durable")

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()


def scan_frames(path: str) -> List[Tuple[int, int]]:
    """(offset, total frame size) of every structurally-complete frame.

    Used by the fault injectors to aim corruption at exact frames; does
    not validate CRCs.
    """
    frames: List[Tuple[int, int]] = []
    with open(path, "rb") as handle:
        data = handle.read()
    position = _HEADER.size
    while position + _FRAME.size <= len(data):
        length, _crc = _FRAME.unpack_from(data, position)
        total = _FRAME.size + length
        if position + total > len(data):
            break
        frames.append((position, total))
        position += total
    return frames


def replay_log(path: str, start_seq: int = 0,
               expected_generation: Optional[int] = None) -> LogReplay:
    """Read back the valid prefix of one log file.

    ``start_seq`` skips records already covered by the checkpoint being
    replayed onto (records carry absolute sequence numbers).  Exact
    duplicates (same seq as the last applied record) are skipped and
    counted; a gap or regression beyond that is corruption.
    """
    replay = LogReplay(generation=expected_generation or 0)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        replay.status = "missing"
        replay.detail = f"{path} does not exist"
        return replay
    if len(data) < _HEADER.size:
        # Crash between log creation and the header fsync completing;
        # no record can have been appended to it.
        replay.status = "torn"
        replay.detail = "torn header (log created but never synced)"
        return replay
    magic, generation = _HEADER.unpack_from(data, 0)
    if magic != _LOG_MAGIC:
        replay.status = "bad-header"
        replay.detail = f"bad log magic {magic!r}"
        return replay
    if expected_generation is not None and generation != expected_generation:
        replay.status = "bad-header"
        replay.detail = (f"log generation {generation} != expected "
                         f"{expected_generation}")
        return replay
    replay.generation = generation
    position = _HEADER.size
    replay.valid_length = position
    last_seq = start_seq
    while position < len(data):
        if position + _FRAME.size > len(data):
            replay.status = "torn"
            replay.detail = (f"torn frame header at {position} "
                             f"({len(data) - position} trailing bytes)")
            return replay
        length, stored_crc = _FRAME.unpack_from(data, position)
        payload_start = position + _FRAME.size
        payload_end = payload_start + length
        if payload_end > len(data):
            replay.status = "torn"
            replay.detail = (f"torn payload at {position}: frame wants "
                             f"{length} bytes, {len(data) - payload_start} "
                             f"present")
            return replay
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) & 0xFFFFFFFF != stored_crc:
            at_tail = payload_end == len(data)
            replay.status = "torn" if at_tail else "corrupt"
            replay.detail = f"CRC mismatch in frame at {position}"
            return replay
        try:
            record = decode_record(payload)
        except RecordDecodeError as error:
            at_tail = payload_end == len(data)
            replay.status = "torn" if at_tail else "corrupt"
            replay.detail = f"undecodable frame at {position}: {error}"
            return replay
        replay.frames += 1
        if record.is_update:
            if record.seq <= last_seq:
                # Double-append after a crash between fsync and ack, or
                # a record the checkpoint already covers.
                replay.duplicates_skipped += 1
            elif record.seq == last_seq + 1:
                replay.records.append(record)
                last_seq = record.seq
            else:
                replay.status = "corrupt"
                replay.detail = (f"sequence gap at {position}: record seq "
                                 f"{record.seq} after {last_seq}")
                return replay
        else:
            replay.records.append(record)
        position = payload_end
        replay.valid_length = position
    return replay
