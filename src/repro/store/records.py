"""Binary codec for delta-log records.

One log record is one durably-applied route update (announce/withdraw)
or a publish marker, carrying:

* an absolute sequence number (``seq``) — replay uses it to skip
  duplicated frames and to detect gaps;
* the update command itself (prefix value/length, gateway, interface) —
  replay re-applies commands through the same
  :class:`~repro.router.fib.ForwardingEngine` path the writer used,
  which is what makes recovery byte-identical to a golden rebuild
  (engine updates are deterministic, proven by
  ``tests/test_recovery_property.py``);
* optionally the word-level :class:`~repro.core.image.ImageDelta` the
  command produced, so recovery can cross-check the replayed engine
  against an independent reconstruction of the image.

Values use LEB128 varints (zigzag for signed words) because table words
are arbitrary Python ints: spillover TCAM keys reach ``2**width`` (128
for IPv6) and the Filter table encodes "empty" as ``-1`` — a fixed
64-bit field would silently truncate both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.image import ImageDelta

#: Record kinds (the first payload byte).
ANNOUNCE = 1
WITHDRAW = 2
PUBLISH = 3

_KINDS = (ANNOUNCE, WITHDRAW, PUBLISH)


class RecordDecodeError(ValueError):
    """A record payload failed structural validation."""


# -- varint primitives -------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise RecordDecodeError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(buffer: bytes, position: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if position >= len(buffer):
            raise RecordDecodeError("truncated varint")
        byte = buffer[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 1024:
            # Words are bounded by 2**width (<= 2**128); anything this
            # long is garbage, not a big table word.
            raise RecordDecodeError("runaway varint")


def _zigzag(value: int) -> int:
    # Zigzag keeps small magnitudes (including -1, the Filter empty
    # marker) to one byte.
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(encoded: int) -> int:
    return (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1)


def _write_signed(out: bytearray, value: int) -> None:
    _write_uvarint(out, _zigzag(value))


def _read_signed(buffer: bytes, position: int) -> Tuple[int, int]:
    encoded, position = _read_uvarint(buffer, position)
    return _unzigzag(encoded), position


def _write_string(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    _write_uvarint(out, len(encoded))
    out.extend(encoded)


def _read_string(buffer: bytes, position: int) -> Tuple[str, int]:
    length, position = _read_uvarint(buffer, position)
    end = position + length
    if end > len(buffer):
        raise RecordDecodeError("truncated string")
    try:
        return buffer[position:end].decode("utf-8"), end
    except UnicodeDecodeError as error:
        raise RecordDecodeError(f"malformed string: {error}") from error


# -- ImageDelta --------------------------------------------------------------


def encode_delta(delta: ImageDelta) -> bytes:
    """Serialize an ``ImageDelta`` (sorted for determinism)."""
    out = bytearray()
    writes_by_table: Dict[str, List[Tuple[int, int]]] = {}
    for (table, address), word in delta.writes.items():
        writes_by_table.setdefault(table, []).append((address, word))
    _write_uvarint(out, len(writes_by_table))
    for table in sorted(writes_by_table):
        _write_string(out, table)
        cells = sorted(writes_by_table[table])
        _write_uvarint(out, len(cells))
        for address, word in cells:
            _write_uvarint(out, address)
            _write_signed(out, word)
    deletions_by_table: Dict[str, List[int]] = {}
    for table, address in delta.deletions:
        deletions_by_table.setdefault(table, []).append(address)
    _write_uvarint(out, len(deletions_by_table))
    for table in sorted(deletions_by_table):
        _write_string(out, table)
        addresses = sorted(deletions_by_table[table])
        _write_uvarint(out, len(addresses))
        for address in addresses:
            _write_uvarint(out, address)
    return bytes(out)


def decode_delta(buffer: bytes, position: int = 0) -> Tuple[ImageDelta, int]:
    """Parse an ``ImageDelta``; returns (delta, next position)."""
    delta = ImageDelta()
    table_count, position = _read_uvarint(buffer, position)
    for _ in range(table_count):
        table, position = _read_string(buffer, position)
        cell_count, position = _read_uvarint(buffer, position)
        for _ in range(cell_count):
            address, position = _read_uvarint(buffer, position)
            word, position = _read_signed(buffer, position)
            delta.writes[(table, address)] = word
    table_count, position = _read_uvarint(buffer, position)
    for _ in range(table_count):
        table, position = _read_string(buffer, position)
        address_count, position = _read_uvarint(buffer, position)
        for _ in range(address_count):
            address, position = _read_uvarint(buffer, position)
            delta.deletions.append((table, address))
    return delta, position


def apply_delta(tables: Dict[str, List[int]], delta: ImageDelta) -> None:
    """Apply a delta in place, mirroring ``HardwareImage.diff`` semantics.

    Deletions truncate a table to the smallest deleted address (diff only
    emits deletions for a contiguous removed suffix); writes then set or
    append words.  A write past the end of its table (a gap) means the
    delta does not chain onto this image — raised, never papered over.
    """
    shrink: Dict[str, int] = {}
    for table, address in delta.deletions:
        current = shrink.get(table)
        shrink[table] = address if current is None else min(current, address)
    for table, new_length in shrink.items():
        words = tables.get(table, [])
        if new_length > len(words):
            raise RecordDecodeError(
                f"delta deletes {table}[{new_length}:] but the table has "
                f"only {len(words)} words"
            )
        tables[table] = words[:new_length]
    for (table, address) in sorted(delta.writes):
        words = tables.setdefault(table, [])
        if address < len(words):
            words[address] = delta.writes[(table, address)]
        elif address == len(words):
            words.append(delta.writes[(table, address)])
        else:
            raise RecordDecodeError(
                f"delta writes {table}[{address}] past the table end "
                f"({len(words)} words) — non-contiguous delta"
            )


# -- log records -------------------------------------------------------------


@dataclass(frozen=True)
class LogRecord:
    """One framed delta-log record, decoded."""

    op: int
    seq: int
    prefix_value: int = 0
    prefix_length: int = 0
    gateway: str = ""
    interface: str = ""
    generation: int = 0
    delta: Optional[ImageDelta] = field(default=None)

    @property
    def is_update(self) -> bool:
        return self.op in (ANNOUNCE, WITHDRAW)


def encode_record(record: LogRecord) -> bytes:
    """Serialize one log record payload (pre-framing)."""
    if record.op not in _KINDS:
        raise RecordDecodeError(f"unknown record op {record.op}")
    out = bytearray([record.op])
    _write_uvarint(out, record.seq)
    if record.op == PUBLISH:
        _write_uvarint(out, record.generation)
        return bytes(out)
    _write_uvarint(out, record.prefix_value)
    _write_uvarint(out, record.prefix_length)
    if record.op == ANNOUNCE:
        _write_string(out, record.gateway)
        _write_string(out, record.interface)
    if record.delta is not None:
        out.append(1)
        out.extend(encode_delta(record.delta))
    else:
        out.append(0)
    return bytes(out)


def decode_record(buffer: bytes) -> LogRecord:
    """Parse one record payload; raises ``RecordDecodeError`` on damage."""
    if not buffer:
        raise RecordDecodeError("empty record payload")
    op = buffer[0]
    if op not in _KINDS:
        raise RecordDecodeError(f"unknown record op {op}")
    position = 1
    seq, position = _read_uvarint(buffer, position)
    if op == PUBLISH:
        generation, position = _read_uvarint(buffer, position)
        _expect_end(buffer, position)
        return LogRecord(op=op, seq=seq, generation=generation)
    prefix_value, position = _read_uvarint(buffer, position)
    prefix_length, position = _read_uvarint(buffer, position)
    gateway = interface = ""
    if op == ANNOUNCE:
        gateway, position = _read_string(buffer, position)
        interface, position = _read_string(buffer, position)
    if position >= len(buffer):
        raise RecordDecodeError("record truncated before delta flag")
    has_delta = buffer[position]
    position += 1
    delta: Optional[ImageDelta] = None
    if has_delta == 1:
        delta, position = decode_delta(buffer, position)
    elif has_delta != 0:
        raise RecordDecodeError(f"bad delta flag {has_delta}")
    _expect_end(buffer, position)
    return LogRecord(op=op, seq=seq, prefix_value=prefix_value,
                     prefix_length=prefix_length, gateway=gateway,
                     interface=interface, delta=delta)


def encode_records(records: List[LogRecord]) -> bytes:
    """Length-prefixed concatenation of record payloads.

    The batch form the replication wire protocol ships (RESYNC bodies,
    reconciliation fix-ups): ``uvarint count`` then, per record,
    ``uvarint length + payload``.
    """
    out = bytearray()
    _write_uvarint(out, len(records))
    for record in records:
        payload = encode_record(record)
        _write_uvarint(out, len(payload))
        out.extend(payload)
    return bytes(out)


def decode_records(buffer: bytes,
                   position: int = 0) -> Tuple[List[LogRecord], int]:
    """Parse an ``encode_records`` batch; returns (records, next position)."""
    count, position = _read_uvarint(buffer, position)
    records: List[LogRecord] = []
    for _ in range(count):
        length, position = _read_uvarint(buffer, position)
        end = position + length
        if end > len(buffer):
            raise RecordDecodeError("truncated record in batch")
        records.append(decode_record(buffer[position:end]))
        position = end
    return records, position


def _expect_end(buffer: bytes, position: int) -> None:
    if position != len(buffer):
        raise RecordDecodeError(
            f"{len(buffer) - position} trailing bytes after record"
        )
