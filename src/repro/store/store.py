"""``SnapshotStore`` — the single-writer persistent store.

Directory layout (one store, one writer)::

    <dir>/checkpoint-00000001.chz     versioned mmap checkpoint images
    <dir>/checkpoint-00000002.chz
    <dir>/delta-00000001.log          one WAL per checkpoint generation
    <dir>/delta-00000002.log

Write path: every route update journaled by the attached
:class:`~repro.serve.snapshot.SnapshotRouter` becomes one CRC-framed log
record, fsynced before the update is acknowledged (``sync=True``).
Checkpoints cut a coherent (compiled snapshot, overlay, pickled FIB)
image under the router's update lock, write it tmp+fsync+rename, rotate
to a fresh log, and prune old generations.  The ordering — log append →
fsync → checkpoint rename-into-place — means a crash at *any* boundary
loses at most the un-acked suffix: recovery maps the newest valid
checkpoint and replays the tail (see :mod:`repro.store.boot`).

Thread model: the store is driven from whoever holds the router's
update lock (journal callbacks run under it; ``checkpoint`` takes its
cut under it).  There is exactly one writer, matching the shard
coordinator's single-writer design.
"""

from __future__ import annotations

import os
import pickle
import re
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..core.image import HardwareImage, ImageDelta
from ..obs import LATENCY_BUCKETS, get_registry
from .checkpoint import fsync_directory, write_checkpoint
from .crashpoints import crashpoint
from .deltalog import DeltaLog
from .records import ANNOUNCE, PUBLISH, WITHDRAW, LogRecord, encode_record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.snapshot import SnapshotRouter

_CKPT_PATTERN = re.compile(r"^checkpoint-(\d{8})\.chz$")
_TMP_SUFFIX = ".tmp"


class StoreError(RuntimeError):
    """The store cannot satisfy a request (bad state, degraded router)."""


def checkpoint_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"checkpoint-{generation:08d}.chz")


def log_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"delta-{generation:08d}.log")


def list_generations(directory: str) -> List[int]:
    """Checkpoint generations present on disk, ascending."""
    generations: List[int] = []
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return generations
    for entry in entries:
        match = _CKPT_PATTERN.match(entry)
        if match is not None:
            generations.append(int(match.group(1)))
    return sorted(generations)


def sweep_tmp_files(directory: str) -> int:
    """Remove half-written ``.tmp`` checkpoints left by a crashed writer."""
    removed = 0
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return removed
    for entry in entries:
        if entry.endswith(_TMP_SUFFIX):
            try:
                os.unlink(os.path.join(directory, entry))
                removed += 1
            except OSError:
                continue
    return removed


@dataclass
class CheckpointPolicy:
    """When to cut a checkpoint, and how many generations to keep."""

    every_records: int = 256
    retain: int = 2

    def due(self, records_since_checkpoint: int) -> bool:
        return (self.every_records > 0
                and records_since_checkpoint >= self.every_records)


class SnapshotStore:
    """Journal + checkpoint writer for one ``SnapshotRouter``."""

    def __init__(self, directory: str,
                 policy: Optional[CheckpointPolicy] = None,
                 sync: bool = True, capture_deltas: bool = False) -> None:
        self.directory = directory
        self.policy = policy or CheckpointPolicy()
        self.sync = sync
        self.capture_deltas = capture_deltas
        self._router: Optional["SnapshotRouter"] = None
        self._log: Optional[DeltaLog] = None
        self._generation = 0
        self._seq = 0
        self._durable_seq = 0
        self._records_since_checkpoint = 0
        self._mirror: Optional[HardwareImage] = None
        self._closed = False
        registry = get_registry()
        self._obs_append = registry.histogram(
            "store_append_seconds", LATENCY_BUCKETS,
            "delta-log record append incl. fsync")
        self._obs_checkpoint = registry.histogram(
            "store_checkpoint_seconds", LATENCY_BUCKETS,
            "checkpoint cut + write + rename + log rotation")
        self._obs_records = registry.counter(
            "store_records_total", "delta-log records appended")
        self._obs_checkpoints = registry.counter(
            "store_checkpoints_total", "checkpoints written")
        self._obs_generation = registry.gauge(
            "store_generation", "newest checkpoint generation on disk")
        self._obs_seq = registry.gauge(
            "store_seq", "last journaled update sequence number")

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, directory: str, router: "SnapshotRouter",
               policy: Optional[CheckpointPolicy] = None,
               sync: bool = True,
               capture_deltas: bool = False,
               seq: int = 0) -> "SnapshotStore":
        """Initialize a store from a live router and attach its journal.

        Works over an empty directory (generation 1) or a damaged one
        being rebuilt (next generation after whatever survives); the
        first checkpoint captures the router's current serving cut.

        ``seq`` seeds the absolute sequence counter.  A boot that
        re-checkpoints a recovered router MUST pass the recovered seq:
        sequence numbers are the cross-generation chaining key, and a
        reset-to-zero lineage would make every post-boot record look
        like a stale duplicate if a later recovery falls back past the
        boot checkpoint.
        """
        os.makedirs(directory, exist_ok=True)
        sweep_tmp_files(directory)
        store = cls(directory, policy=policy, sync=sync,
                    capture_deltas=capture_deltas)
        store._router = router
        store._seq = seq
        store._durable_seq = seq
        existing = list_generations(directory)
        store._generation = existing[-1] if existing else 0
        store.checkpoint()
        if capture_deltas:
            store._mirror = HardwareImage.snapshot(router.fib.engine)
        router.set_journal(store.record_update)
        return store

    @classmethod
    def resume(cls, directory: str, router: "SnapshotRouter",
               generation: int, seq: int, log_valid_length: int,
               policy: Optional[CheckpointPolicy] = None,
               sync: bool = True,
               capture_deltas: bool = False) -> "SnapshotStore":
        """Continue appending to a recovered store (see ``boot``).

        ``log_valid_length`` is the replay-validated byte count of the
        newest log; a torn tail beyond it is truncated so new records
        chain onto the durable prefix.
        """
        store = cls(directory, policy=policy, sync=sync,
                    capture_deltas=capture_deltas)
        store._router = router
        store._generation = generation
        store._seq = seq
        store._durable_seq = seq
        newest = list_generations(directory)
        tail_generation = newest[-1] if newest else generation
        store._log = DeltaLog.open_append(
            log_path(directory, tail_generation), tail_generation,
            log_valid_length, sync=sync,
        )
        if capture_deltas:
            store._mirror = HardwareImage.snapshot(router.fib.engine)
        router.set_journal(store.record_update)
        store._obs_generation.set(store._generation)
        store._obs_seq.set(store._seq)
        return store

    # -- journal -------------------------------------------------------------

    def record_update(self, op: str, prefix_value: int, prefix_length: int,
                      gateway: str, interface: str) -> None:
        """Append one route update to the log (router lock held).

        Called synchronously by the router's journal hook *after* the
        update applied to the engine: a crash before the append loses
        only the never-acknowledged update; a crash after it is replayed
        on boot.  Both end states equal a golden rebuild of a prefix of
        the update sequence.
        """
        if self._closed or self._log is None:
            raise StoreError(f"store {self.directory} is not accepting "
                             f"records (closed or unattached)")
        self._seq += 1
        delta = self._capture_delta() if self.capture_deltas else None
        record = LogRecord(
            op=ANNOUNCE if op == "announce" else WITHDRAW,
            seq=self._seq, prefix_value=prefix_value,
            prefix_length=prefix_length, gateway=gateway or "",
            interface=interface or "", delta=delta,
        )
        started = time.perf_counter()
        self._log.append(encode_record(record))
        self._obs_append.observe(time.perf_counter() - started)
        self._durable_seq = self._seq
        self._records_since_checkpoint += 1
        self._obs_records.inc()
        self._obs_seq.set(self._seq)

    def _capture_delta(self) -> Optional[ImageDelta]:
        router = self._router
        if router is None:
            return None
        current = HardwareImage.snapshot(router.fib.engine)
        delta = (self._mirror.diff(current)
                 if self._mirror is not None else None)
        self._mirror = current
        return delta

    def note_publish(self, generation: int) -> bool:
        """Journal a shard publish marker, then checkpoint if due.

        Returns True when a checkpoint was cut.  Markers do not consume
        update sequence numbers — replay skips them — but they anchor
        the shared-memory generation timeline in the durable log.
        """
        if self._closed or self._log is None:
            raise StoreError(f"store {self.directory} is not accepting "
                             f"records (closed or unattached)")
        record = LogRecord(op=PUBLISH, seq=self._seq, generation=generation)
        self._log.append(encode_record(record))
        return self.maybe_checkpoint()

    # -- checkpointing -------------------------------------------------------

    def maybe_checkpoint(self) -> bool:
        """Cut a checkpoint when the policy says one is due."""
        if self.policy.due(self._records_since_checkpoint):
            self.checkpoint()
            return True
        return False

    def checkpoint(self) -> int:
        """Cut, write and rotate one checkpoint; returns its generation.

        The cut (compiled snapshot + overlay + pickled FIB) is read
        under the router's update lock, so it is one coherent serving
        state at one sequence number.  Refused while the router is
        degraded: a checkpoint of untrustworthy tables would poison
        every future boot.
        """
        router = self._router
        if router is None or self._closed:
            raise StoreError(f"store {self.directory}: no router attached")
        started = time.perf_counter()
        snapshot, overlay, fib_blob, healthy = router.persistence_cut()
        if not healthy:
            raise StoreError(
                "checkpoint refused: router is degraded (tables are not "
                "trustworthy); recover first"
            )
        generation = self._generation + 1
        write_checkpoint(
            checkpoint_path(self.directory, generation), snapshot, overlay,
            generation, self._seq, blobs={"fib": fib_blob},
        )
        new_log = DeltaLog.create(log_path(self.directory, generation),
                                  generation, sync=self.sync)
        fsync_directory(self.directory)
        crashpoint("ckpt:log-rotated")
        if self._log is not None:
            self._log.close()
        self._log = new_log
        self._generation = generation
        self._records_since_checkpoint = 0
        self._prune(generation)
        crashpoint("ckpt:pruned")
        self._obs_checkpoint.observe(time.perf_counter() - started)
        self._obs_checkpoints.inc()
        self._obs_generation.set(generation)
        return generation

    def _prune(self, newest: int) -> None:
        """Best-effort removal of generations beyond the retain window."""
        cutoff = newest - max(self.policy.retain, 1) + 1
        for generation in list_generations(self.directory):
            if generation >= cutoff:
                continue
            for path in (checkpoint_path(self.directory, generation),
                         log_path(self.directory, generation)):
                try:
                    os.unlink(path)
                except OSError:
                    continue

    # -- introspection / lifecycle ------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def durable_seq(self) -> int:
        return self._durable_seq

    @property
    def records_since_checkpoint(self) -> int:
        return self._records_since_checkpoint

    def close(self) -> None:
        """Detach from the router and close the log (idempotent)."""
        if self._closed:
            return
        self._closed = True
        router = self._router
        if router is not None:
            router.set_journal(None)
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self) -> "SnapshotStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
