"""Workload generation: synthetic BGP tables and update traces."""

from .distributions import (
    IPV4_LENGTH_WEIGHTS,
    IPV6_LENGTH_WEIGHTS,
    mean_length,
    normalized,
)
from .synthetic import (
    AS_TABLE_SIZES,
    all_as_tables,
    as_table,
    ipv6_table,
    synthetic_table,
)
from .traces import RRC_MIXES, TraceMix, rrc_trace, synthesize_trace
from .io import (
    TableFormatError,
    load_table,
    load_trace,
    parse_table,
    parse_trace,
    save_table,
    save_trace,
)

__all__ = [
    "IPV4_LENGTH_WEIGHTS",
    "IPV6_LENGTH_WEIGHTS",
    "mean_length",
    "normalized",
    "AS_TABLE_SIZES",
    "all_as_tables",
    "as_table",
    "ipv6_table",
    "synthetic_table",
    "RRC_MIXES",
    "TraceMix",
    "rrc_trace",
    "synthesize_trace",
    "TableFormatError",
    "load_table",
    "load_trace",
    "parse_table",
    "parse_trace",
    "save_table",
    "save_trace",
]
