"""Empirical prefix-length distributions for synthetic table generation.

The paper draws its benchmarks from bgp.potaroo.net snapshots (§5), which
are not redistributable here.  The generator instead samples from the
well-documented global-BGP length histogram of that era: a dominant mode
at /24 (slightly over half the table), a secondary mass at /16, a broad
shelf over /17–/23, and thin tails of short aggregates and long, mostly
infrastructural, prefixes.  Storage, collapse and expansion behaviour —
everything the experiments measure — is a function of this histogram and
of prefix-value clustering, both of which the generator controls.
"""

from __future__ import annotations

from typing import Dict

# IPv4 global-table length mix, circa mid-2000s BGP snapshots.
IPV4_LENGTH_WEIGHTS: Dict[int, float] = {
    8: 0.0015,
    9: 0.0007,
    10: 0.0010,
    11: 0.0018,
    12: 0.0035,
    13: 0.0060,
    14: 0.0110,
    15: 0.0120,
    16: 0.0650,
    17: 0.0240,
    18: 0.0400,
    19: 0.0580,
    20: 0.0600,
    21: 0.0550,
    22: 0.0800,
    23: 0.0800,
    24: 0.5300,
    25: 0.0030,
    26: 0.0030,
    27: 0.0020,
    28: 0.0020,
    29: 0.0025,
    30: 0.0025,
    31: 0.0005,
    32: 0.0050,
}

# IPv6 mix (paper §5 synthesizes IPv6 from IPv4 models; we use the
# registry-allocation shape: /32 LIR allocations, /48 end sites).
IPV6_LENGTH_WEIGHTS: Dict[int, float] = {
    16: 0.005,
    20: 0.008,
    24: 0.015,
    28: 0.020,
    32: 0.330,
    36: 0.050,
    40: 0.060,
    44: 0.040,
    48: 0.380,
    52: 0.015,
    56: 0.035,
    60: 0.007,
    64: 0.025,
    128: 0.010,
}


def normalized(weights: Dict[int, float]) -> Dict[int, float]:
    total = sum(weights.values())
    return {length: weight / total for length, weight in weights.items()}


def mean_length(weights: Dict[int, float]) -> float:
    norm = normalized(weights)
    return sum(length * weight for length, weight in norm.items())
