"""File formats for routing tables and update traces.

Plain, diff-able text — the shape public BGP dumps come in:

Routing table (``*.tbl``)::

    # width: 32
    10.0.0.0/8 17
    2001:db8::/32 4        (IPv6 tables use width: 128)

Update trace (``*.upd``)::

    announce 10.1.0.0/16 42
    withdraw 10.1.0.0/16

Loaders are strict: a malformed line raises with its line number, because
silently dropping routes corrupts every downstream experiment.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Union

from ..core.updates import ANNOUNCE, WITHDRAW, UpdateOp
from ..prefix.prefix import Prefix
from ..prefix.table import RoutingTable

Source = Union[str, os.PathLike]


class TableFormatError(ValueError):
    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"line {line_number}: {reason}: {line.strip()!r}")
        self.line_number = line_number


def save_table(table: RoutingTable, path: Source) -> None:
    with open(path, "w") as handle:
        handle.write(f"# width: {table.width}\n")
        handle.write(f"# name: {table.name}\n")
        for prefix, next_hop in sorted(table, key=lambda it: it[0].as_tuple()):
            handle.write(f"{prefix} {next_hop}\n")


def load_table(path: Source, name: str = "") -> RoutingTable:
    with open(path) as handle:
        return parse_table(handle, name=name or os.path.basename(str(path)))


def parse_table(lines: Iterable[str], name: str = "table") -> RoutingTable:
    width = None
    routes = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("width:"):
                width = int(body.split(":", 1)[1])
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TableFormatError(number, raw, "expected '<prefix> <next_hop>'")
        try:
            prefix = Prefix.from_string(parts[0])
            next_hop = int(parts[1])
        except ValueError as error:
            raise TableFormatError(number, raw, str(error)) from error
        routes.append((prefix, next_hop))
    if width is None:
        width = routes[0][0].width if routes else 32
    table = RoutingTable(width=width, name=name)
    for prefix, next_hop in routes:
        table.add(prefix, next_hop)
    return table


def save_trace(trace: Iterable[UpdateOp], path: Source) -> None:
    with open(path, "w") as handle:
        for update in trace:
            if update.op == ANNOUNCE:
                handle.write(f"announce {update.prefix} {update.next_hop}\n")
            else:
                handle.write(f"withdraw {update.prefix}\n")


def load_trace(path: Source) -> List[UpdateOp]:
    with open(path) as handle:
        return parse_trace(handle)


def parse_trace(lines: Iterable[str]) -> List[UpdateOp]:
    trace: List[UpdateOp] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            if parts[0] == "announce" and len(parts) == 3:
                trace.append(UpdateOp(
                    ANNOUNCE, Prefix.from_string(parts[1]), int(parts[2])
                ))
            elif parts[0] == "withdraw" and len(parts) == 2:
                trace.append(UpdateOp(WITHDRAW, Prefix.from_string(parts[1])))
            else:
                raise ValueError("expected 'announce <prefix> <nh>' or "
                                 "'withdraw <prefix>'")
        except ValueError as error:
            raise TableFormatError(number, raw, str(error)) from error
    return trace
