"""Synthetic BGP-like routing tables (substitute for bgp.potaroo.net, §5).

Two properties of real tables drive every experiment:

* the *length histogram* (see :mod:`.distributions`), which controls CPE
  expansion factors and sub-cell planning;
* *value clustering* — registries hand out contiguous blocks and operators
  deaggregate them, so same-length prefixes arrive in consecutive runs.
  Clustering is what lets prefix collapsing merge siblings into one
  collapsed key (the paper's measured collapsed/original ratio of roughly
  one half at stride 4).

The generator emits prefixes in runs of consecutive values inside randomly
placed allocation blocks: ``run_mean`` and ``isolated_fraction`` tune the
clustering so the collapsed/original ratio lands in the paper's band.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..prefix.prefix import IPV4_WIDTH, IPV6_WIDTH, Prefix
from ..prefix.table import RoutingTable
from .distributions import IPV4_LENGTH_WEIGHTS, IPV6_LENGTH_WEIGHTS, normalized

# The paper's seven potaroo BGP tables (§6.2): all >= 140K prefixes.  Sizes
# here are representative of the 2005-2006 snapshots; benches scale them.
AS_TABLE_SIZES: Dict[str, int] = {
    "AS1221": 150_000,
    "AS12956": 145_000,
    "AS286": 152_000,
    "AS293": 158_000,
    "AS4637": 160_000,
    "AS701": 163_000,
    "AS7660": 143_000,
}

NEXT_HOP_RANGE = 256


def synthetic_table(
    size: int,
    width: int = IPV4_WIDTH,
    seed: int = 0,
    length_weights: Optional[Dict[int, float]] = None,
    run_mean: float = 7.0,
    isolated_fraction: float = 0.28,
    name: str = "synthetic",
) -> RoutingTable:
    """Generate ``size`` distinct routes with BGP-like structure."""
    rng = random.Random(seed)
    weights = normalized(
        length_weights
        or (IPV4_LENGTH_WEIGHTS if width == IPV4_WIDTH else IPV6_LENGTH_WEIGHTS)
    )
    lengths = list(weights)
    cumulative = _cumulative(list(weights.values()))
    table = RoutingTable(width=width, name=name)
    seen = set()
    # Open runs of consecutive values, one per length.
    runs: Dict[int, Tuple[int, int]] = {}  # length -> (next value, remaining)
    blocks: List[Tuple[int, int]] = []  # (value, length) allocation blocks

    while len(table) < size:
        length = _sample(rng, lengths, cumulative)
        value = None
        run = runs.get(length)
        if run is not None and run[1] > 0:
            value, remaining = run
            runs[length] = (value + 1, remaining - 1)
            if value >= (1 << length):
                value = None
        if value is None:
            value = _fresh_value(rng, length, blocks)
            if rng.random() > isolated_fraction:
                run_length = 1 + int(rng.expovariate(1.0 / run_mean))
                runs[length] = (value + 1, run_length - 1)
        if (value, length) in seen:
            continue
        seen.add((value, length))
        table.add(Prefix(value, length, width), rng.randrange(1, NEXT_HOP_RANGE))
    return table


def _cumulative(weights: List[float]) -> List[float]:
    total = 0.0
    out = []
    for weight in weights:
        total += weight
        out.append(total)
    return out


def _sample(rng: random.Random, lengths: List[int],
            cumulative: List[float]) -> int:
    draw = rng.random() * cumulative[-1]
    for length, edge in zip(lengths, cumulative):
        if draw <= edge:
            return length
    return lengths[-1]


def _fresh_value(rng: random.Random, length: int,
                 blocks: List[Tuple[int, int]]) -> int:
    """A new start value, usually inside an existing allocation block."""
    if blocks and rng.random() < 0.8:
        base_value, base_length = rng.choice(blocks)
        if base_length <= length:
            extra = length - base_length
            return (base_value << extra) | rng.getrandbits(extra) if extra else base_value
    block_length = min(length, rng.randint(8, 14))
    base_value = rng.getrandbits(block_length)
    blocks.append((base_value, block_length))
    extra = length - block_length
    return (base_value << extra) | (rng.getrandbits(extra) if extra else 0)


def as_table(name: str, size: Optional[int] = None,
             scale: float = 1.0) -> RoutingTable:
    """One of the paper's seven BGP benchmark tables, synthesized.

    Per-table seeds make each AS table distinct but reproducible;
    ``scale`` shrinks all of them proportionally for quick runs.
    """
    if name not in AS_TABLE_SIZES:
        raise KeyError(f"unknown AS table {name!r}; have {sorted(AS_TABLE_SIZES)}")
    target = size if size is not None else max(64, int(AS_TABLE_SIZES[name] * scale))
    seed = sum(ord(ch) for ch in name) * 2654435761 % (1 << 31)
    return synthetic_table(target, seed=seed, name=name)


def all_as_tables(scale: float = 1.0) -> List[RoutingTable]:
    return [as_table(name, scale=scale) for name in AS_TABLE_SIZES]


def ipv6_table(size: int, seed: int = 0, name: str = "ipv6") -> RoutingTable:
    """Synthetic IPv6 table (§6.4.2 synthesizes these from IPv4 models)."""
    return synthetic_table(
        size, width=IPV6_WIDTH, seed=seed,
        length_weights=IPV6_LENGTH_WEIGHTS, name=name,
    )
