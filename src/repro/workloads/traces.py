"""Synthetic BGP update traces (substitute for RIPE RIS rrc traces, §6.6).

A trace is a sequence of announce/withdraw operations against a live
table.  The generator reproduces the *kinds* of updates the paper measures
in Fig. 14, with per-rrc mixes:

* plain withdraws of currently present routes;
* route flaps — re-announcing a recently withdrawn route (BGP session
  resets and damping churn make these a large share of real traffic);
* next-hop changes for present routes (path exploration);
* deaggregation announces — new more-specifics of present routes, which
  land in an existing collapsed prefix (the paper's "Add PC" category);
* genuinely new routes in fresh address space (rare), which exercise the
  singleton-insert and re-setup paths.

How each generated update is *classified* is measured by the engine, not
assumed by the generator: e.g. a withdraw is only a route-flap opportunity
if it actually emptied its bucket.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from ..core.updates import ANNOUNCE, WITHDRAW, UpdateOp
from ..prefix.prefix import Prefix
from ..prefix.table import RoutingTable
from .synthetic import NEXT_HOP_RANGE


@dataclass(frozen=True)
class TraceMix:
    """Probability of each generated update kind (normalized on use)."""

    withdraw: float = 0.30
    flap: float = 0.22
    next_hop: float = 0.23
    deaggregate: float = 0.24
    fresh: float = 0.01

    def weights(self) -> List[Tuple[str, float]]:
        return [
            ("withdraw", self.withdraw),
            ("flap", self.flap),
            ("next_hop", self.next_hop),
            ("deaggregate", self.deaggregate),
            ("fresh", self.fresh),
        ]


# Five geographically diverse traces, as in Fig. 14 / Table 1.  The mixes
# differ the way the paper's bars do (e.g. rrc06 Otemachi is withdraw-heavy).
RRC_MIXES: Dict[str, TraceMix] = {
    "rrc00 (Amsterdam)": TraceMix(0.30, 0.22, 0.23, 0.24, 0.010),
    "rrc01 (LINX London)": TraceMix(0.27, 0.26, 0.22, 0.24, 0.008),
    "rrc11 (New York)": TraceMix(0.29, 0.20, 0.27, 0.23, 0.012),
    "rrc08 (San Jose)": TraceMix(0.25, 0.24, 0.28, 0.22, 0.006),
    "rrc06 (Otemachi, Japan)": TraceMix(0.36, 0.25, 0.18, 0.20, 0.010),
}


def synthesize_trace(
    table: RoutingTable,
    num_updates: int,
    mix: TraceMix = TraceMix(),
    seed: int = 0,
    max_flap_window: int = 4096,
) -> List[UpdateOp]:
    """Generate a trace consistent with ``table`` as the starting state."""
    rng = random.Random(seed)
    width = table.width
    present: Dict[Prefix, int] = {p: nh for p, nh in table}
    present_list: List[Prefix] = list(present)
    recently_withdrawn: Deque[Tuple[Prefix, int]] = deque(maxlen=max_flap_window)
    kinds, weights = zip(*mix.weights())
    trace: List[UpdateOp] = []

    def random_present() -> Prefix:
        while True:
            prefix = present_list[rng.randrange(len(present_list))]
            if prefix in present:
                return prefix

    while len(trace) < num_updates:
        kind = rng.choices(kinds, weights)[0]
        if kind == "withdraw" and present:
            prefix = random_present()
            next_hop = present.pop(prefix)
            recently_withdrawn.append((prefix, next_hop))
            trace.append(UpdateOp(WITHDRAW, prefix))
        elif kind == "flap" and recently_withdrawn:
            prefix, next_hop = recently_withdrawn.popleft()
            if prefix in present:
                continue
            present[prefix] = next_hop
            present_list.append(prefix)
            trace.append(UpdateOp(ANNOUNCE, prefix, next_hop))
        elif kind == "next_hop" and present:
            prefix = random_present()
            next_hop = rng.randrange(1, NEXT_HOP_RANGE)
            present[prefix] = next_hop
            trace.append(UpdateOp(ANNOUNCE, prefix, next_hop))
        elif kind == "deaggregate" and present:
            # New more-specific routing announcements overwhelmingly land
            # *next to* existing routes (deaggregated blocks): mostly a
            # sibling at the same length differing in its low bits — which
            # shares the parent's collapsed prefix and exercises the Add-PC
            # path — and occasionally a genuinely longer more-specific.
            parent = random_present()
            if parent.length == 0:
                continue
            if rng.random() < 0.93:
                low_bits = min(3, parent.length)
                delta = rng.randint(1, (1 << low_bits) - 1)
                child = Prefix(parent.value ^ delta, parent.length, width)
            else:
                if parent.length + 1 > width:
                    continue
                extra = rng.randint(1, min(3, width - parent.length))
                value = (parent.value << extra) | rng.getrandbits(extra)
                child = Prefix(value, parent.length + extra, width)
            if child in present:
                continue
            next_hop = rng.randrange(1, NEXT_HOP_RANGE)
            present[child] = next_hop
            present_list.append(child)
            trace.append(UpdateOp(ANNOUNCE, child, next_hop))
        elif kind == "fresh":
            length = rng.choice((16, 19, 20, 21, 22, 24))
            prefix = Prefix(rng.getrandbits(length), min(length, width), width)
            if prefix in present:
                continue
            next_hop = rng.randrange(1, NEXT_HOP_RANGE)
            present[prefix] = next_hop
            present_list.append(prefix)
            trace.append(UpdateOp(ANNOUNCE, prefix, next_hop))
    return trace


def rrc_trace(name: str, table: RoutingTable, num_updates: int,
              seed: int = 0) -> List[UpdateOp]:
    """A named rrc-style trace (Fig. 14 / Table 1 workloads)."""
    if name not in RRC_MIXES:
        raise KeyError(f"unknown trace {name!r}; have {sorted(RRC_MIXES)}")
    per_name_seed = seed + sum(ord(ch) for ch in name)
    return synthesize_trace(table, num_updates, RRC_MIXES[name], per_name_seed)
