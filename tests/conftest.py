"""Shared fixtures: small deterministic routing tables and RNGs."""

import random

import pytest

from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthetic_table


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def tiny_table():
    """The paper's Fig. 5 example plus a default route and an IPv4 flavor."""
    table = RoutingTable(width=32, name="tiny")
    table.add(Prefix.from_bits("10011"), 1)    # P1 (Fig. 5)
    table.add(Prefix.from_bits("101011"), 2)   # P2
    table.add(Prefix.from_bits("1001101"), 3)  # P3
    table.add(Prefix(0, 0, 32), 9)             # default route
    return table


@pytest.fixture
def small_table():
    """~2000 clustered routes: big enough to exercise every sub-cell path."""
    return synthetic_table(2000, seed=42, name="small")


@pytest.fixture
def medium_table():
    """~8000 routes for integration-style tests."""
    return synthetic_table(8000, seed=7, name="medium")


def brute_force_lookup(table: RoutingTable, key: int):
    """Reference LPM by scanning all routes (tests only)."""
    best = None
    best_hop = None
    for prefix, next_hop in table:
        if prefix.covers(key) and (best is None or prefix.length > best):
            best = prefix.length
            best_hop = next_hop
    return best_hop


def sample_keys(table: RoutingTable, rng: random.Random, count: int):
    """Half random keys, half keys under known prefixes (hit-heavy)."""
    keys = [rng.getrandbits(table.width) for _ in range(count // 2)]
    prefixes = list(table.prefixes())
    for _ in range(count - len(keys)):
        prefix = prefixes[rng.randrange(len(prefixes))]
        free = table.width - prefix.length
        keys.append(prefix.network_int() | (rng.getrandbits(free) if free else 0))
    return keys
