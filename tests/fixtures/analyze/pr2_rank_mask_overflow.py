# chisel-analyze-scope: dtype
"""Frozen copy of the PR 2 rank-mask bug (fixed in the live tree).

The span-6 bit-vector rank used ``(1 << (expansion + 1)) - 1`` to build
the below-or-equal mask.  At ``expansion == 63`` the shift count reaches
the uint64 width, numpy wraps it to ``1 << 0``, and the mask drops every
bit — the longest-expansion prefix silently loses its rank.  The live
code sidesteps the width case with the two-step
``mask = (1 << e) | ((1 << e) - 1)`` form; this copy preserves the
original expression so the analyzer's ANZ301 pass keeps a regression
anchor (tests/test_devtools_analyze.py asserts exactly one finding).
"""

import numpy as np


def rank_mask(vectors: np.ndarray, keys: np.ndarray) -> np.ndarray:
    expansion = keys & np.uint64(63)
    below = vectors & ((np.uint64(1) << (expansion + np.uint64(1))) - np.uint64(1))
    return below
