"""Frozen copy of the PR 5 scrub-mid-export bug (fixed in the live tree).

The original coordinator exported the router's snapshot to shared
memory and installed it without re-checking ``words_written()`` — so a
scrub repair (or a late update) landing between the export and the
install published a half-repaired table image to every worker.  The
live code routes publishes through ``SnapshotRouter.recompile``'s
optimistic quiescence re-check; this copy preserves the unfenced
export→install pair so the analyzer's ANZ204 pass keeps a regression
anchor (tests/test_devtools_analyze.py asserts exactly one finding).
"""

from repro.shard.codec import SharedSnapshot


class RacyPublisher:
    """Publishes whatever the router holds, with no quiescence fence."""

    def __init__(self, router):
        self.router = router
        self.generation = 0

    def publish_current(self):
        with self.router._lock:
            snapshot = self.router._snapshot
        segment = SharedSnapshot.export(snapshot, [], self.generation + 1)
        self._install(segment)

    def _install(self, segment):
        self.generation = segment.generation
