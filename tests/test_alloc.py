"""Unit tests for the Result Table block allocator."""

import pytest

from repro.core.alloc import BlockAllocator, _size_class


class TestSizeClass:
    def test_powers_of_two(self):
        assert _size_class(1) == 1
        assert _size_class(2) == 2
        assert _size_class(3) == 4
        assert _size_class(8) == 8
        assert _size_class(9) == 16

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _size_class(0)


class TestAllocate:
    def test_allocation_grows_arena(self):
        alloc = BlockAllocator()
        pointer = alloc.allocate(3)
        assert pointer == 0
        assert len(alloc.arena) == 4  # rounded to size class

    def test_sequential_allocations_disjoint(self):
        alloc = BlockAllocator()
        a = alloc.allocate(4)
        b = alloc.allocate(4)
        assert abs(a - b) >= 4

    def test_free_then_reuse(self):
        alloc = BlockAllocator()
        a = alloc.allocate(4)
        alloc.free(a, 4)
        b = alloc.allocate(3)  # same size class
        assert b == a

    def test_free_lists_segregated_by_class(self):
        alloc = BlockAllocator()
        a = alloc.allocate(2)
        alloc.free(a, 2)
        b = alloc.allocate(8)  # different class: must not reuse a
        assert b != a

    def test_write_read_block(self):
        alloc = BlockAllocator()
        pointer = alloc.allocate(4)
        alloc.write_block(pointer, [10, 20, 30])
        assert alloc.read_block(pointer, 3) == [10, 20, 30]
        assert alloc.read(pointer + 1) == 20
        alloc.write(pointer, 99)
        assert alloc.read(pointer) == 99

    def test_block_size_query(self):
        assert BlockAllocator().block_size(5) == 8


class TestStats:
    def test_utilization_tracks_requests(self):
        alloc = BlockAllocator()
        alloc.allocate(3)  # 4 provisioned
        stats = alloc.stats()
        assert stats.arena_entries == 4
        assert stats.requested_entries == 3
        assert stats.utilization == pytest.approx(0.75)

    def test_free_updates_stats(self):
        alloc = BlockAllocator()
        pointer = alloc.allocate(4)
        alloc.free(pointer, 4)
        stats = alloc.stats()
        assert stats.live_entries == 0
        assert stats.requested_entries == 0

    def test_empty_allocator(self):
        stats = BlockAllocator().stats()
        assert stats.arena_entries == 0
        assert stats.utilization == 1.0

    def test_churn_bounded_arena(self):
        """Alloc/free churn at one size class must not grow the arena."""
        alloc = BlockAllocator()
        pointer = alloc.allocate(8)
        alloc.free(pointer, 8)
        for _ in range(100):
            p = alloc.allocate(8)
            alloc.free(p, 8)
        assert len(alloc.arena) == 8
