"""Tests for failure-probability analysis, storage harness, and reporting."""

import os

import pytest

from repro.analysis import (
    empirical_failure_rate,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig15_rows,
    format_table,
    repeated_failure_probability,
    save_report,
    setup_failure_probability,
)
from repro.workloads import synthetic_table


class TestFailureBound:
    def test_design_point_band(self):
        """§4.1: k=3, m/n=3 gives P(fail) below ~1e-7 at n=256K."""
        p = setup_failure_probability(256_000, 3 * 256_000, 3)
        assert p < 1e-7

    def test_fig2_k_dependence(self):
        """Fig. 2: P(fail) drops sharply with k at fixed m/n."""
        n = 262_144
        probabilities = [
            setup_failure_probability(n, 3 * n, k) for k in range(2, 8)
        ]
        assert all(b < a for a, b in zip(probabilities, probabilities[1:]))
        assert probabilities[0] / probabilities[-1] > 1e10

    def test_fig2_mn_dependence_marginal(self):
        """Fig. 2: increasing m/n helps, but only marginally."""
        n = 262_144
        p3 = setup_failure_probability(n, 3 * n, 3)
        p9 = setup_failure_probability(n, 9 * n, 3)
        assert p9 < p3
        assert p3 / p9 < 1e3  # orders of magnitude smaller effect than k

    def test_fig3_n_dependence(self):
        """Fig. 3: P(fail) decreases dramatically with n."""
        small = setup_failure_probability(10_000, 30_000, 3)
        large = setup_failure_probability(2_500_000, 7_500_000, 3)
        assert large < small / 100

    def test_clamped_to_one(self):
        assert setup_failure_probability(100, 100, 2) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            setup_failure_probability(0, 10, 3)

    def test_repeated_failures(self):
        """§4.1's 1e-14, 1e-21... sequence."""
        assert repeated_failure_probability(1e-7, 1) == pytest.approx(1e-14)
        assert repeated_failure_probability(1e-7, 3) == pytest.approx(1e-28)

    def test_empirical_rate_tracks_bound_direction(self):
        """At tiny n and tight m/n, stalls are observable; loosening m/n
        must reduce them (Monte-Carlo sanity for Eq. 3's direction)."""
        tight = empirical_failure_rate(60, 1.3, 3, trials=120, seed=1)
        loose = empirical_failure_rate(60, 3.0, 3, trials=120, seed=1)
        assert tight.rate > loose.rate
        assert loose.rate < 0.1

    def test_empirical_at_design_point_never_fails(self):
        result = empirical_failure_rate(2000, 3.0, 3, trials=20, seed=2)
        assert result.failures == 0


class TestStorageHarness:
    @pytest.fixture(scope="class")
    def tables(self):
        return [synthetic_table(5000, seed=s, name=f"T{s}") for s in (1, 2)]

    def test_fig8_rows_complete(self):
        rows = fig8_rows(sizes=(256_000, 512_000))
        assert len(rows) == 2
        assert all(6 < row["ebf_over_chisel"] < 11 for row in rows)

    def test_fig9_claims(self, tables):
        for row in fig9_rows(tables):
            assert row["pc_worst_mbits"] < row["cpe_avg_mbits"]
            assert row["pc_avg_mbits"] < row["pc_worst_mbits"]
            assert row["cpe_worst_mbits"] > row["cpe_avg_mbits"]

    def test_fig10_claims(self, tables):
        for row in fig10_rows(tables):
            assert 10 < row["ebf_over_chisel"] < 22
            assert row["chisel_over_ebf_onchip"] < 1.44

    def test_fig11_linear_scaling(self):
        rows = fig11_rows(sizes=(250_000, 500_000, 1_000_000), sample_size=5000)
        pc = [row["pc_avg_mbits"] for row in rows]
        cpe = [row["cpe_avg_mbits"] for row in rows]
        assert pc[2] == pytest.approx(4 * pc[0], rel=0.15)
        assert all(c > p for c, p in zip(cpe, pc))

    def test_fig12_rows(self):
        rows = fig12_rows(sizes=(256_000,))
        assert rows[0]["ipv6_over_ipv4"] < 2.2

    def test_fig15_chisel_wins_average(self, tables):
        for row in fig15_rows(tables):
            assert row["chisel_avg_over_tree"] < 1.0


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert "demo" in lines[0]
        assert len({len(line) for line in lines[2:4]}) == 1

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_save_report_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_report("unit.txt", "hello")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read().strip() == "hello"
