"""Tests for the §8 applications: packet classification and content search."""

import random

import pytest

from repro.apps import Rule, Signature, SignatureScanner, TwoFieldClassifier
from repro.prefix import Prefix, key_from_string


def rule(src: str, dst: str, priority: int, action: int) -> Rule:
    return Rule(Prefix.from_string(src), Prefix.from_string(dst),
                priority, action)


@pytest.fixture
def acl():
    return [
        rule("0.0.0.0/0", "0.0.0.0/0", 0, 1),           # permit any (default)
        rule("10.0.0.0/8", "0.0.0.0/0", 10, 0),          # drop from 10/8 ...
        rule("10.1.0.0/16", "192.168.0.0/16", 20, 1),    # ... except to 192.168/16
        rule("0.0.0.0/0", "203.0.113.0/24", 15, 0),      # drop to test-net
    ]


class TestClassifier:
    def test_priority_resolution(self, acl):
        classifier = TwoFieldClassifier.build(acl)
        cases = [
            ("8.8.8.8", "1.1.1.1", 1),          # default permit
            ("10.2.3.4", "1.1.1.1", 0),          # 10/8 drop
            ("10.1.3.4", "192.168.1.1", 1),      # carve-out wins on priority
            ("10.2.3.4", "192.168.1.1", 0),      # carve-out needs 10.1/16
            ("8.8.8.8", "203.0.113.5", 0),       # dst drop
            ("10.1.0.1", "203.0.113.5", 0),      # 10/8 drop beats... (prio 10<15)
        ]
        for src, dst, expected_action in cases:
            winner = classifier.classify(
                key_from_string(src), key_from_string(dst)
            )
            assert winner is not None
            assert winner.action == expected_action, (src, dst)

    def test_matches_brute_force(self, acl):
        classifier = TwoFieldClassifier.build(acl)
        rng = random.Random(1)
        for _ in range(2000):
            src = rng.getrandbits(32)
            dst = rng.getrandbits(32)
            assert classifier.classify(src, dst) == \
                classifier.classify_brute_force(src, dst)

    def test_random_rulesets_match_brute_force(self):
        rng = random.Random(7)
        rules = []
        for priority in range(60):
            src_len = rng.choice((0, 8, 16, 24))
            dst_len = rng.choice((0, 8, 16, 24))
            rules.append(Rule(
                Prefix(rng.getrandbits(src_len) if src_len else 0, src_len, 32),
                Prefix(rng.getrandbits(dst_len) if dst_len else 0, dst_len, 32),
                priority=rng.randrange(100),
                action=rng.randrange(4),
            ))
        classifier = TwoFieldClassifier.build(rules)
        for _ in range(2000):
            src, dst = rng.getrandbits(32), rng.getrandbits(32)
            assert classifier.classify(src, dst) == \
                classifier.classify_brute_force(src, dst)

    def test_no_match_without_default(self):
        classifier = TwoFieldClassifier.build([
            rule("10.0.0.0/8", "10.0.0.0/8", 1, 1),
        ])
        assert classifier.classify(
            key_from_string("11.0.0.1"), key_from_string("10.0.0.1")
        ) is None

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            TwoFieldClassifier.build([])

    def test_stats(self, acl):
        stats = TwoFieldClassifier.build(acl).stats()
        assert stats.rules == 4
        assert stats.src_prefixes == 3   # 0/0, 10/8, 10.1/16
        assert stats.dst_prefixes == 3   # 0/0, 192.168/16, 203.0.113/24
        assert 0 < stats.crossproduct_fill <= 1.0


class TestSignatureScanner:
    @pytest.fixture
    def scanner(self):
        return SignatureScanner([
            Signature(b"EVIL", 1),
            Signature(b"backdoor", 2),
            Signature(b"\x90\x90\x90\x90", 3),   # NOP sled
            Signature(b"root", 4),
        ], seed=5)

    def test_finds_all_occurrences(self, scanner):
        payload = b"xxEVILyy backdoor zzEVIL"
        matches = scanner.scan_all(payload)
        found = {(m.offset, m.signature.rule_id) for m in matches}
        assert found == {(2, 1), (9, 2), (20, 1)}

    def test_overlapping_matches(self, scanner):
        matches = SignatureScanner(
            [Signature(b"aba", 1), Signature(b"bab", 2)]
        ).scan_all(b"ababab")
        assert len(matches) == 4

    def test_clean_payload(self, scanner):
        assert scanner.scan_all(b"perfectly benign traffic") == []
        assert not scanner.contains_threat(b"hello world")

    def test_contains_threat_early_exit(self, scanner):
        assert scanner.contains_threat(b"rooted box")

    def test_multi_length_probe_budget(self, scanner):
        """One probe per distinct length per byte — the O(1) guarantee."""
        assert scanner.probes_per_byte() == len(set(scanner.lengths)) == 2

    def test_no_false_positives_on_adversarial_payload(self):
        """Random payloads through a large dictionary: every reported match
        must be a real byte-for-byte occurrence."""
        rng = random.Random(9)
        signatures = [
            Signature(bytes(rng.randrange(256) for _ in range(8)), i)
            for i in range(500)
        ]
        scanner = SignatureScanner(signatures, seed=6)
        payload = bytes(rng.randrange(256) for _ in range(4096))
        for match in scanner.scan(payload):
            window = payload[match.offset:match.offset + 8]
            assert window == match.signature.pattern

    def test_duplicate_patterns_deduped(self):
        scanner = SignatureScanner([Signature(b"dup", 1), Signature(b"dup", 2)])
        assert scanner.signature_count == 1

    def test_empty_signature_rejected(self):
        with pytest.raises(ValueError):
            Signature(b"", 1)

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            SignatureScanner([])
