"""Hypothesis differential: PartitionedBloomierFilter vs a plain dict.

One churn run drives a :class:`PartitionedBloomierFilter` and a dict
model through the same randomized op sequence — inserts of new keys,
re-inserts of spilled keys (the bug-1 class), deletes, batched deletes,
spillover drains, and forced setup failures injected mid-churn (the
bug-2 class) — and checks after every op that each model key looks up
to its model value and each removed key is absent.  Parameterized over
both Index Table backends, so the fuse construction is held to exactly
the Bloomier contract.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloomier import (
    BloomierSetupError,
    PartitionedBloomierFilter,
    SpilloverCapacityError,
)
from repro.faults import FaultInjector

BACKENDS = ("bloomier", "fuse")

KEY_BITS = 12
VALUE_BITS = 10

# One churn step: (op selector, key selector, value).  Keys are drawn
# from a small space so deletes and re-inserts actually hit live keys.
OPS = st.tuples(
    st.sampled_from(
        ["insert", "reinsert", "delete", "delete_many", "drain", "fail"]
    ),
    st.integers(min_value=0, max_value=(1 << KEY_BITS) - 1),
    st.integers(min_value=0, max_value=(1 << VALUE_BITS) - 1),
)


def _check(pbf, model, removed):
    assert len(pbf) == len(model)
    for key, value in model.items():
        assert key in pbf
        assert pbf.get(key) == value
        assert pbf.lookup(key) == value
    for key in removed - set(model):
        assert key not in pbf


@pytest.mark.parametrize("backend", BACKENDS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       ops=st.lists(OPS, min_size=5, max_size=60))
def test_partitioned_matches_dict_model(backend, seed, ops):
    rng = random.Random(seed)
    pbf = PartitionedBloomierFilter(
        capacity=256,
        key_bits=KEY_BITS,
        value_bits=VALUE_BITS,
        partitions=4,
        rng=random.Random(seed),
        # Generous TCAM: forced failures park whole groups there, and a
        # TCAM overflow mid-rebuild is a separate failure mode with its
        # own chaos coverage.
        spill_capacity=256,
        max_rehash=3,
        backend=backend,
    )
    model = {}
    seeded = {rng.getrandbits(KEY_BITS): rng.getrandbits(VALUE_BITS)
              for _ in range(64)}
    report = pbf.setup(seeded)
    model.update(seeded)
    injector = FaultInjector(seed=seed ^ 0xBEEF)
    removed = set()

    for op, key, value in ops:
        if op == "insert":
            if key in model:
                continue
            pbf.insert(key, value)
            model[key] = value
        elif op == "reinsert":
            # Target a *spilled* key when one exists — the exact class
            # the stale-TCAM bug silently corrupted.
            spilled = [
                k for group in pbf._spilled_by_group for k in group
            ]
            if not spilled:
                continue
            target = spilled[key % len(spilled)]
            pbf.insert(target, value)
            model[target] = value
        elif op == "delete":
            if not model:
                continue
            target = sorted(model)[key % len(model)]
            pbf.delete(target)
            del model[target]
            removed.add(target)
        elif op == "delete_many":
            if not model:
                continue
            keys = sorted(model)
            batch = keys[key % len(keys)::7][:8]
            pbf.delete_many(batch)
            for target in batch:
                del model[target]
                removed.add(target)
        elif op == "drain":
            pbf.drain_spillover()
        elif op == "fail":
            if key in model:
                continue
            # Deny the singleton and stall the rebuild's peel: the
            # insert fails through the real rehash loop.  The structure
            # must come back unchanged (bug 2's rollback) and stay fully
            # usable — the next loop iteration re-checks every key.
            with injector.force_setup_failure(times=1, mode="stall"):
                try:
                    pbf.insert(key, value)
                except BloomierSetupError:
                    pass
                except SpilloverCapacityError:
                    pass
                else:
                    model[key] = value
        _check(pbf, model, removed)
