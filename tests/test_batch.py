"""Tests for the numpy-vectorized batch-lookup path."""

import numpy as np
import pytest

from repro.core import ChiselConfig, ChiselLPM
from repro.core.batch import BatchLookup, _popcount64
from repro.prefix import Prefix
from repro.workloads import ipv6_table

from .conftest import sample_keys


@pytest.fixture
def compiled(small_table):
    engine = ChiselLPM.build(small_table, ChiselConfig(seed=33))
    return engine, BatchLookup(engine)


class TestPopcount:
    def test_matches_python(self):
        values = np.array([0, 1, 0xFF, 0xF0F0, (1 << 64) - 1, 0x8000000000000001],
                          dtype=np.uint64)
        expected = [bin(int(v)).count("1") for v in values]
        assert list(_popcount64(values)) == expected


class TestBatchCorrectness:
    def test_matches_scalar_everywhere(self, compiled, small_table, rng):
        engine, batch = compiled
        keys = sample_keys(small_table, rng, 3000)
        expected = [engine.lookup(key) for key in keys]
        assert batch.lookup_many(keys) == expected

    def test_misses_marked(self, compiled, rng):
        engine, batch = compiled
        answers = batch.lookup_batch([0xFFFFFFFF])
        assert answers[0] == engine.lookup(0xFFFFFFFF) or answers[0] == -1

    def test_empty_batch(self, compiled):
        _engine, batch = compiled
        assert batch.lookup_batch([]).shape == (0,)

    def test_numpy_input_accepted(self, compiled, small_table, rng):
        engine, batch = compiled
        keys = np.array(sample_keys(small_table, rng, 200), dtype=np.uint64)
        assert batch.lookup_many(keys) == [engine.lookup(int(k)) for k in keys]

    def test_after_updates_via_recompile(self, compiled, small_table, rng):
        engine, batch = compiled
        prefix = Prefix.from_string("203.0.113.0/24")
        engine.announce(prefix, 99)
        assert batch.stale
        fresh = BatchLookup(engine)
        key = prefix.network_int() | 9
        assert fresh.lookup_many([key]) == [99]

    def test_with_spillover_entries(self):
        """Engines whose Bloomier setup spilled keys still batch-match."""
        import random

        from repro.prefix import RoutingTable

        rng = random.Random(16)
        table = RoutingTable(width=32)
        for index in range(64):
            table.add(Prefix(rng.getrandbits(24), 24, 32), index % 50 + 1)
        config = ChiselConfig(seed=16, max_rehash=0, partitions=1)
        engine = ChiselLPM.build(table, config)
        batch = BatchLookup(engine)
        keys = [p.network_int() | 3 for p in table.prefixes()]
        assert batch.lookup_many(keys) == [engine.lookup(k) for k in keys]


class TestBatchRestrictions:
    def test_ipv6_rejected(self):
        table = ipv6_table(50, seed=1)
        engine = ChiselLPM.build(table, ChiselConfig(width=128, seed=1))
        with pytest.raises(ValueError):
            BatchLookup(engine)

    def test_stale_flag_initially_false(self, compiled):
        _engine, batch = compiled
        assert not batch.stale


class TestBatchPerformance:
    def test_faster_than_scalar(self, small_table, rng):
        import time

        engine = ChiselLPM.build(small_table, ChiselConfig(seed=34))
        batch = BatchLookup(engine)
        keys = sample_keys(small_table, rng, 5000)
        start = time.perf_counter()
        for key in keys:
            engine.lookup(key)
        scalar_time = time.perf_counter() - start
        start = time.perf_counter()
        batch.lookup_batch(keys)
        batch_time = time.perf_counter() - start
        assert batch_time < scalar_time  # typically ~10x better
