"""Randomized differential suite: BatchLookup vs the scalar Fig. 6 datapath.

This is the correctness gate for the serving layer (``repro.serve``): a
``SnapshotRouter`` may only serve traffic from a compiled snapshot because
these tests pin the compiled path bit-for-bit to the scalar datapath —
across every span 0-6 (including the span-6 all-ones bit-vector whose
inclusive rank mask used to overflow uint64), spillover TCAM entries,
update churn with recompiles, and dirty/purged maintenance states.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ChiselConfig, ChiselLPM
from repro.core.batch import BatchLookup
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthetic_table
from repro.workloads.traces import synthesize_trace
from repro.core.updates import ANNOUNCE, apply_trace


def assert_batch_matches_scalar(engine, keys, batch=None):
    """The differential oracle: compiled answers == scalar answers."""
    batch = batch or BatchLookup(engine)
    expected = [engine.lookup(int(key)) for key in keys]
    got = batch.lookup_many(list(keys))
    assert got == expected
    return batch


def random_table(rng, width, routes):
    table = RoutingTable(width=width)
    for _ in range(routes):
        length = rng.randint(0, width)
        value = rng.getrandbits(length) if length else 0
        table.add(Prefix(value, length, width), rng.randint(1, 200))
    return table


def probe_keys(engine, rng, extra=400):
    """Random keys plus keys aimed under every stored route, at every
    expansion corner (all-zeros, all-ones, random collapsed bits)."""
    width = engine.config.width
    keys = [rng.getrandbits(width) for _ in range(extra)]
    for prefix, _hop in engine.iter_routes():
        free = width - prefix.length
        base_key = prefix.network_int()
        keys.append(base_key)
        if free:
            keys.append(base_key | ((1 << free) - 1))
            keys.append(base_key | rng.getrandbits(free))
    return keys


class TestEverySpan:
    """Satellite 1: spans 0-6 with all-ones bit-vectors and max expansions."""

    @pytest.mark.parametrize("stride", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("width", [28, 32])
    def test_span_differential(self, stride, width):
        rng = random.Random(stride * 101 + width)
        table = RoutingTable(width=width)
        config = ChiselConfig(width=width, stride=stride, seed=stride)
        engine = ChiselLPM.build(table, config)
        # One rel-0 original per sub-cell (all-ones bit-vector: every
        # expansion set) plus rel-span originals (single-bit vectors).
        for cell in engine.plan:
            for _ in range(4):
                value = rng.getrandbits(cell.base) if cell.base else 0
                table.add(Prefix(value, cell.base, width), rng.randint(1, 99))
                top = cell.base + cell.span
                value = rng.getrandbits(top) if top else 0
                table.add(Prefix(value, top, width), rng.randint(1, 99))
        engine = ChiselLPM.build(table, config)
        spans = {cell.span for cell in engine.subcells}
        assert spans & {stride}, "expected at least one full-stride sub-cell"
        assert_batch_matches_scalar(engine, probe_keys(engine, rng))

    def test_span6_all_ones_vector_expansion63(self):
        """The uint64 rank-mask overflow regression, pinned explicitly."""
        table = RoutingTable(width=32)
        table.add(Prefix(0b1010101, 7, 32), 5)   # rel 0 in [7..13] -> all-ones
        table.add(Prefix(0b0110011, 7, 32), 7)
        engine = ChiselLPM.build(table, ChiselConfig(stride=6, seed=1))
        assert any(cell.span == 6 for cell in engine.subcells)
        subcell = next(c for c in engine.subcells if c.base == 7)
        bucket = subcell.buckets[0b1010101]
        assert bucket.bit_vector() == (1 << 64) - 1
        keys = []
        for value in (0b1010101, 0b0110011):
            for expansion in (0, 1, 31, 62, 63):  # 63 shifts the naive mask by 64
                keys.append((value << 25) | (expansion << 19) | 12345)
        assert_batch_matches_scalar(engine, keys)

    def test_width64_differential(self):
        rng = random.Random(64)
        table = random_table(rng, 64, 150)
        engine = ChiselLPM.build(table, ChiselConfig(width=64, stride=6, seed=3))
        assert_batch_matches_scalar(engine, probe_keys(engine, rng))


class TestOutOfRangeAddresses:
    """Satellite 2: out-of-range Result-Table addresses are misses."""

    def test_empty_engine_all_miss(self):
        engine = ChiselLPM.build(RoutingTable(width=32))
        batch = BatchLookup(engine)
        rng = random.Random(2)
        keys = [rng.getrandbits(32) for _ in range(256)]
        answers = batch.lookup_batch(keys)
        assert (answers == -1).all()
        assert_batch_matches_scalar(engine, keys, batch=batch)

    def test_empty_subcell_regression(self):
        """A table leaving whole sub-cells empty (empty arenas) never
        fabricates next hop 0 for keys landing in them."""
        table = RoutingTable(width=32)
        table.add(Prefix(0b10, 2, 32), 3)  # only the shortest cell populated
        engine = ChiselLPM.build(table, ChiselConfig(seed=4))
        empty_cells = [c for c in engine.subcells if not c.buckets]
        assert empty_cells, "expected empty sub-cells under full tiling"
        rng = random.Random(4)
        keys = [rng.getrandbits(32) for _ in range(512)]
        assert_batch_matches_scalar(engine, keys)

    def test_corrupted_region_pointer_is_miss_not_arena0(self, small_table):
        """With the old np.clip, a wild address clamped onto the arena and
        returned a plausible next hop; it must read as a miss."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=5))
        batch = BatchLookup(engine)
        rng = random.Random(5)
        keys = probe_keys(engine, rng, extra=0)[:300]
        hits = batch.lookup_batch(keys)
        assert (hits != -1).any()
        for plan in batch._plans:
            plan.region_ptr = plan.region_ptr + 1_000_000
        answers = batch.lookup_batch(keys)
        assert (answers == -1).all()

    def test_negative_address_is_miss(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=6))
        batch = BatchLookup(engine)
        for plan in batch._plans:
            plan.region_ptr = plan.region_ptr - 1_000_000
        rng = random.Random(6)
        keys = [rng.getrandbits(32) for _ in range(200)]
        assert (batch.lookup_batch(keys) == -1).all()


class TestStaleness:
    """Satellite 3: every table mutation moves the staleness counter."""

    def test_stale_after_withdraw_purge(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=7))
        prefixes = list(small_table.prefixes())
        for prefix in prefixes[:40]:
            engine.withdraw(prefix)
        assert engine.dirty_count() > 0
        batch = BatchLookup(engine)  # compiled with dirty entries parked
        assert not batch.stale
        purged = engine.purge_dirty()
        assert purged > 0
        assert batch.stale, "purge mutated tables but snapshot stayed fresh"

    def test_stale_after_maintenance(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=8))
        for prefix in list(small_table.prefixes())[:25]:
            engine.withdraw(prefix)
        batch = BatchLookup(engine)
        engine.maintenance()
        assert batch.stale

    def test_stale_after_subcell_grow(self, small_table):
        """A capacity-doubling rebuild rewrites every hardware word of the
        sub-cell; a snapshot compiled before it must read stale.  The seed
        tree copied ``words_written`` verbatim into the grown sub-cell, so
        the rebuild was invisible to ``BatchLookup.stale``."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=10))
        batch = BatchLookup(engine)
        assert not batch.stale
        engine._grow_subcell(engine.subcells[0])
        assert batch.stale, (
            "sub-cell grow rebuilt the tables but the snapshot stayed fresh"
        )

    def test_grow_through_announce_flips_stale_and_stays_exact(self):
        """End-to-end: announcing past a sub-cell's capacity triggers the
        RESETUP grow; compiled snapshots must notice and a recompile must
        agree with the scalar path."""
        rng = random.Random(11)
        engine = ChiselLPM.build(RoutingTable(width=32), ChiselConfig(seed=11))
        target = engine.subcell_for(Prefix(0, 28, 32))
        original_capacity = target.capacity
        batch = BatchLookup(engine)
        for j in range(original_capacity + 1):
            engine.announce(Prefix(j << 4, 28, 32), (j % 200) + 1)
        grown = engine.subcell_for(Prefix(0, 28, 32))
        assert grown.capacity > original_capacity
        assert batch.stale
        keys = probe_keys(engine, rng)
        assert_batch_matches_scalar(engine, keys)

    def test_differential_across_dirty_and_purged_states(self, small_table):
        rng = random.Random(9)
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=9))
        withdrawn = list(small_table.prefixes())[::7]
        for prefix in withdrawn:
            engine.withdraw(prefix)
        keys = probe_keys(engine, rng)
        keys += [p.network_int() for p in withdrawn]
        assert_batch_matches_scalar(engine, keys)  # dirty entries parked
        engine.purge_dirty()
        assert_batch_matches_scalar(engine, keys)  # physically retired
        engine.maintenance()
        assert_batch_matches_scalar(engine, keys)  # drained + compacted


class TestSpillover:
    """Satellite 4: the vectorized spillover override stays exact."""

    @staticmethod
    def _spill_keys(engine, count):
        """Move ``count`` encoded keys into spillover TCAMs — exactly the
        state a failed Bloomier setup leaves (§4.1): the key is absent
        from its group's encoding and the TCAM answer is authoritative."""
        spilled = 0
        for subcell in engine.subcells:
            index = subcell.index
            for value in list(subcell.buckets)[:2]:
                pointer = index.get(value)
                if pointer is None or spilled >= count:
                    continue
                group_index = index.group_of(value)
                group = index._groups[group_index]
                if value not in group.shadow:
                    continue
                survivors = dict(group.shadow)
                del survivors[value]
                group.setup(survivors)
                index.spillover.insert(value, pointer)
                index._spilled_by_group[group_index][value] = pointer
                spilled += 1
        return spilled

    def test_spillover_differential(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=16))
        assert self._spill_keys(engine, 6) >= 4
        batch = BatchLookup(engine)
        assert sum(len(plan.spill_keys) for plan in batch._plans) >= 4
        rng = random.Random(17)
        assert_batch_matches_scalar(engine, probe_keys(engine, rng),
                                    batch=batch)

    def test_spillover_after_churn(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=18))
        assert self._spill_keys(engine, 4)
        rng = random.Random(18)
        for prefix in list(small_table.prefixes())[:10]:
            engine.withdraw(prefix)
        for _ in range(10):
            engine.announce(Prefix(rng.getrandbits(24), 24, 32),
                            rng.randint(1, 50))
        assert_batch_matches_scalar(engine, probe_keys(engine, rng))

    def test_spillover_drain_moves_staleness(self, small_table):
        """Maintenance draining the TCAM mutates the Index Table; a
        compiled snapshot must notice."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=19))
        assert self._spill_keys(engine, 4)
        batch = BatchLookup(engine)
        report = engine.maintenance()
        assert report["spillover_drained"] > 0
        assert batch.stale
        assert_batch_matches_scalar(engine, probe_keys(
            engine, random.Random(19), extra=100))

    @staticmethod
    def _aim_at(engine, subcell, collapsed, rng):
        """Keys whose collapse lands exactly on ``collapsed``."""
        free = engine.config.width - subcell.base
        base_key = collapsed << free
        if not free:
            return [base_key]
        return [base_key, base_key | ((1 << free) - 1),
                base_key | rng.getrandbits(free)]

    def _each_spilled(self, engine):
        for subcell in engine.subcells:
            for spills in subcell.index._spilled_by_group:
                for value, pointer in list(spills.items()):
                    yield subcell, spills, value, pointer

    def test_spilled_pointer_on_dirty_bucket(self, small_table):
        """A TCAM hit whose bucket was lazily withdrawn (dirty) must be
        a miss on every datapath, exactly as the scalar check orders
        it: the override replaces the pointer, the dirty bit still
        vetoes the answer."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=20))
        assert self._spill_keys(engine, 6) >= 4
        rng = random.Random(20)
        aimed = []
        for subcell, _spills, value, pointer in self._each_spilled(engine):
            subcell.dirty_table[pointer] = True
            aimed.extend(self._aim_at(engine, subcell, value, rng))
        assert aimed, "setup must have parked spilled keys"
        keys = aimed + probe_keys(engine, rng, extra=60)
        assert_batch_matches_scalar(engine, keys)
        assert_batch_matches_scalar(
            engine, keys, batch=BatchLookup(engine, datapath="legacy"))

    def test_spilled_pointer_out_of_range(self, small_table):
        """A poisoned TCAM entry pointing past the bucket table must be
        filtered as a miss — never clamped onto bucket 0 — on the
        scalar, legacy, and flat paths alike."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=21))
        assert self._spill_keys(engine, 6) >= 4
        rng = random.Random(21)
        aimed = []
        for subcell, spills, value, _ptr in self._each_spilled(engine):
            bad_pointer = subcell.capacity + 7
            subcell.index.spillover.insert(value, bad_pointer)
            spills[value] = bad_pointer
            aimed.extend(self._aim_at(engine, subcell, value, rng))
        assert aimed, "setup must have parked spilled keys"
        keys = aimed + probe_keys(engine, rng, extra=60)
        assert_batch_matches_scalar(engine, keys)
        assert_batch_matches_scalar(
            engine, keys, batch=BatchLookup(engine, datapath="legacy"))


class TestChurnRecompile:
    """Update churn + recompile: the snapshot lifecycle stays exact."""

    def test_trace_churn_differential(self, small_table):
        rng = random.Random(20)
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=20))
        trace = synthesize_trace(small_table, 600, seed=20)
        for start in range(0, len(trace), 150):
            window = trace[start:start + 150]
            apply_trace(engine, window)
            touched = [op.prefix.network_int() | rng.getrandbits(
                32 - op.prefix.length) if op.prefix.length < 32
                else op.prefix.network_int() for op in window]
            assert_batch_matches_scalar(
                engine, probe_keys(engine, rng, extra=100) + touched
            )

    def test_stale_flag_over_trace(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=21))
        trace = synthesize_trace(small_table, 80, seed=21)
        batch = BatchLookup(engine)
        mutated = False
        for op in trace:
            if op.op == ANNOUNCE:
                mutated |= engine.announce(op.prefix, op.next_hop) is not None
            else:
                mutated |= engine.withdraw(op.prefix) is not None
        assert mutated and batch.stale
        assert not BatchLookup(engine).stale


# -- hypothesis: arbitrary tables, widths <= 64 ------------------------------

@st.composite
def table_and_config(draw):
    width = draw(st.integers(min_value=4, max_value=64))
    stride = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    routes = draw(st.integers(min_value=0, max_value=80))
    rng = random.Random(seed)
    table = random_table(rng, width, routes)
    return table, ChiselConfig(width=width, stride=stride, seed=seed), seed


@given(table_and_config())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_differential_random_tables(params):
    table, config, seed = params
    engine = ChiselLPM.build(table, config)
    rng = random.Random(seed ^ 0xBEEF)
    assert_batch_matches_scalar(engine, probe_keys(engine, rng, extra=150))


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_differential_random_churn(seed):
    rng = random.Random(seed)
    table = synthetic_table(300, seed=seed % 97)
    engine = ChiselLPM.build(table, ChiselConfig(seed=seed & 0xFFFF))
    prefixes = list(table.prefixes())
    for _ in range(60):
        prefix = prefixes[rng.randrange(len(prefixes))]
        if rng.random() < 0.5:
            engine.withdraw(prefix)
        else:
            engine.announce(prefix, rng.randint(1, 200))
    if rng.random() < 0.5:
        engine.purge_dirty()
    assert_batch_matches_scalar(engine, probe_keys(engine, rng, extra=100))
