"""Batch entry-point normalization: every layer, same contract.

The bugfix sweep this suite pins: ``BatchLookup.lookup_batch`` used to
crash on 0-d input (``len()`` of a scalar) and raise an opaque
``OverflowError`` from deep inside numpy on negative Python ints.  Every
batch entry point — core ``BatchLookup``, the serving ``SnapshotRouter``,
the shard worker loop, and the ``ShardCoordinator`` — now routes through
``normalize_keys``: scalars and n-d input flatten to 1-D, and negative /
oversized / non-integer keys raise a clear ``ValueError`` naming the
offending value, *before* anything reaches the datapath (or a worker
queue).
"""

import random

import numpy as np
import pytest

from repro.core import ChiselConfig, ChiselLPM
from repro.core.batch import BatchLookup, normalize_keys
from repro.router import ForwardingEngine
from repro.serve import RecompilePolicy, SnapshotRouter
from repro.shard import ShardCoordinator
from repro.shard.worker import RESULT_ERROR, TASK_BATCH
from repro.workloads import synthetic_table


def build_engine(size=300, seed=67):
    table = synthetic_table(size, seed=seed)
    config = ChiselConfig(width=table.width, stride=4, seed=seed)
    return table, ChiselLPM.build(table, config)


class TestNormalizeKeys:
    """The shared normalizer itself (unit level)."""

    def test_scalar_yields_one_element(self):
        out = normalize_keys(7)
        assert out.shape == (1,)
        assert out.dtype == np.uint64
        assert int(out[0]) == 7

    def test_zero_d_array_yields_one_element(self):
        out = normalize_keys(np.uint64(9))
        assert out.shape == (1,)
        assert int(out[0]) == 9

    def test_nested_input_is_flattened(self):
        out = normalize_keys([[1, 2], [3, 4]])
        assert out.shape == (4,)
        assert out.tolist() == [1, 2, 3, 4]

    def test_empty_input(self):
        assert normalize_keys([]).shape == (0,)
        assert normalize_keys([]).dtype == np.uint64

    def test_uint64_array_passes_through_unchanged(self):
        keys = np.array([1, 2, 3], dtype=np.uint64)
        assert normalize_keys(keys) is keys

    def test_signed_array_converts_when_non_negative(self):
        out = normalize_keys(np.array([5, 6], dtype=np.int32))
        assert out.dtype == np.uint64
        assert out.tolist() == [5, 6]

    def test_full_width_keys_stay_exact(self):
        """Python ints past 2**53 must not round through float64."""
        exact = [2**64 - 1, 2**63 + 13, 2**53 + 1]
        out = normalize_keys(exact)
        assert [int(value) for value in out] == exact

    def test_negative_python_int_raises_value_error(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_keys([3, -1, 5])

    def test_negative_scalar_raises_value_error(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_keys(-7)

    def test_negative_signed_array_raises_value_error(self):
        """Signed arrays used to wrap silently to huge uint64 keys."""
        with pytest.raises(ValueError, match="non-negative"):
            normalize_keys(np.array([1, -2], dtype=np.int64))

    def test_oversized_key_raises_value_error(self):
        with pytest.raises(ValueError, match="2\\*\\*64"):
            normalize_keys([1, 2**64])

    def test_float_array_raises_value_error(self):
        with pytest.raises(ValueError, match="integer"):
            normalize_keys(np.array([1.5, 2.0]))

    def test_bool_input_raises_value_error(self):
        with pytest.raises(ValueError):
            normalize_keys([True, False])

    def test_string_input_raises_value_error(self):
        with pytest.raises(ValueError):
            normalize_keys(["10.0.0.1"])


class TestBatchLookupEntryPoint:
    def test_scalar_key_matches_scalar_lookup(self):
        _table, engine = build_engine()
        lookup = BatchLookup(engine)
        rng = random.Random(67)
        for _ in range(20):
            key = rng.getrandbits(engine.config.width)
            answer = engine.lookup(key)
            expected = -1 if answer is None else int(answer)
            got = lookup.lookup_batch(key)  # 0-d entry: used to crash
            assert got.shape == (1,)
            assert int(got[0]) == expected

    def test_negative_key_is_value_error_not_overflow(self):
        _table, engine = build_engine()
        lookup = BatchLookup(engine)
        try:
            lookup.lookup_batch([1, -3])
        except ValueError as error:
            assert "non-negative" in str(error)
        else:
            pytest.fail("negative key must raise ValueError")

    def test_oversized_key_is_value_error(self):
        _table, engine = build_engine()
        lookup = BatchLookup(engine)
        with pytest.raises(ValueError):
            lookup.lookup_batch([2**64 + 5])

    def test_two_d_batch_is_flattened(self):
        _table, engine = build_engine()
        lookup = BatchLookup(engine)
        rng = random.Random(68)
        keys = [rng.getrandbits(engine.config.width) for _ in range(8)]
        grid = np.array(keys, dtype=np.uint64).reshape(2, 4)
        assert np.array_equal(lookup.lookup_batch(grid),
                              lookup.lookup_batch(keys))


class TestServeEntryPoint:
    def _router(self):
        table = synthetic_table(300, seed=71)
        fib = ForwardingEngine.from_table(table)
        return table, SnapshotRouter(fib, RecompilePolicy())

    def test_scalar_key_served(self):
        _table, router = self._router()
        out = router.lookup_batch(5)
        assert out.shape == (1,)

    def test_negative_key_rejected_before_serving(self):
        _table, router = self._router()
        with pytest.raises(ValueError, match="non-negative"):
            router.lookup_batch([-1])

    def test_float_batch_rejected(self):
        _table, router = self._router()
        with pytest.raises(ValueError, match="integer"):
            router.lookup_batch(np.array([1.25]))


class TestCoordinatorEntryPoint:
    def _fleet(self):
        table = synthetic_table(400, seed=73)
        fib = ForwardingEngine.from_table(table)
        router = SnapshotRouter(fib, RecompilePolicy())
        return table, router

    def test_bad_batches_rejected_before_enqueue_and_fleet_survives(self):
        table, router = self._fleet()
        rng = random.Random(73)
        keys = np.array(
            [rng.getrandbits(table.width) for _ in range(500)],
            dtype=np.uint64)
        with ShardCoordinator(router, workers=1) as coordinator:
            with pytest.raises(ValueError, match="non-negative"):
                coordinator.lookup_batch([4, -4])
            with pytest.raises(ValueError):
                coordinator.lookup_batch([2**64])
            # The rejection happened before any task hit a queue: the
            # fleet still answers and a scalar entry normalizes.
            assert np.array_equal(coordinator.lookup_batch(keys),
                                  router.lookup_batch(keys))
            assert coordinator.lookup_batch(int(keys[0])).shape == (1,)

    def test_worker_normalizes_defense_in_depth(self):
        """A malformed batch pushed straight onto the task queue —
        bypassing the coordinator's normalization — must surface as a
        clear ValueError via RESULT_ERROR, not an OverflowError."""
        _table, router = self._fleet()
        with ShardCoordinator(router, workers=1) as coordinator:
            coordinator._tasks[0].put((TASK_BATCH, 999, [3, -9], []))
            deadline_messages = []
            for _ in range(200):
                message = coordinator._results.get(timeout=5)
                deadline_messages.append(message)
                if message[0] == RESULT_ERROR:
                    break
            else:
                pytest.fail(f"no RESULT_ERROR: {deadline_messages!r}")
            error_repr = message[2]
            assert "ValueError" in error_repr
            assert "non-negative" in error_repr
            assert "OverflowError" not in error_repr
