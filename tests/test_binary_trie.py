"""Unit tests for the binary-trie LPM oracle."""

import pytest

from repro.baselines import BinaryTrie
from repro.prefix import Prefix, RoutingTable, key_from_string

from .conftest import brute_force_lookup, sample_keys


@pytest.fixture
def trie():
    return BinaryTrie.from_table(RoutingTable.from_strings([
        ("0.0.0.0/0", 1),
        ("10.0.0.0/8", 2),
        ("10.1.0.0/16", 3),
        ("10.1.2.0/24", 4),
    ]))


class TestLookup:
    def test_longest_match(self, trie):
        assert trie.lookup(key_from_string("10.1.2.3")) == 4

    def test_partial_match(self, trie):
        assert trie.lookup(key_from_string("10.2.0.1")) == 2

    def test_default_fallback(self, trie):
        assert trie.lookup(key_from_string("99.99.99.99")) == 1

    def test_no_match_without_default(self):
        trie = BinaryTrie(32)
        trie.insert(Prefix.from_string("10.0.0.0/8"), 1)
        assert trie.lookup(key_from_string("11.0.0.0")) is None

    def test_lookup_prefix_reports_length(self, trie):
        assert trie.lookup_prefix(key_from_string("10.1.2.3")) == (24, 4)
        assert trie.lookup_prefix(key_from_string("8.8.8.8")) == (0, 1)

    def test_host_route(self):
        trie = BinaryTrie(32)
        trie.insert(Prefix.from_string("1.2.3.4/32"), 5)
        assert trie.lookup(key_from_string("1.2.3.4")) == 5
        assert trie.lookup(key_from_string("1.2.3.5")) is None


class TestMutation:
    def test_insert_overwrites(self, trie):
        trie.insert(Prefix.from_string("10.0.0.0/8"), 99)
        assert len(trie) == 4
        assert trie.lookup(key_from_string("10.2.0.1")) == 99

    def test_remove(self, trie):
        assert trie.remove(Prefix.from_string("10.1.2.0/24")) == 4
        assert trie.lookup(key_from_string("10.1.2.3")) == 3
        assert len(trie) == 3

    def test_remove_absent(self, trie):
        assert trie.remove(Prefix.from_string("172.16.0.0/12")) is None
        assert trie.remove(Prefix.from_string("10.1.2.0/25")) is None

    def test_node_count_positive(self, trie):
        assert trie.node_count() > len(trie)


class TestAgainstBruteForce:
    def test_random_table_equivalence(self, small_table, rng):
        trie = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 400):
            assert trie.lookup(key) == brute_force_lookup(small_table, key)

    def test_ipv6(self, rng):
        from repro.workloads import ipv6_table

        table = ipv6_table(300, seed=3)
        trie = BinaryTrie.from_table(table)
        for key in sample_keys(table, rng, 200):
            assert trie.lookup(key) == brute_force_lookup(table, key)
