"""Unit tests for bit-vector buckets (the Fig. 5 disambiguation scheme)."""

import pytest

from repro.core.bitvector import Bucket


@pytest.fixture
def fig5_bucket_1001():
    """Bucket for collapsed prefix 1001 at base 4, stride 3 (paper Fig. 5):
    holds P1 = 10011* (length 5, suffix 1) and P3 = 1001101 (length 7,
    suffix 101)."""
    bucket = Bucket(base=4, span=3, pointer=0)
    bucket.add(5, 0b1, 1)      # P1 -> next hop 1
    bucket.add(7, 0b101, 3)    # P3 -> next hop 3
    return bucket


@pytest.fixture
def fig5_bucket_1010():
    """Bucket for 1010: holds P2 = 101011* (length 6, suffix 11)."""
    bucket = Bucket(base=4, span=3, pointer=1)
    bucket.add(6, 0b11, 2)
    return bucket


class TestFig5Example:
    def test_bit_vector_1001(self, fig5_bucket_1001):
        """Paper says the vector is 00001111: expansions 100..111 covered."""
        assert fig5_bucket_1001.bit_vector() == 0b11110000

    def test_bit_vector_1010(self, fig5_bucket_1010):
        """Paper: 00000011 — expansions 110 and 111 covered by P2."""
        assert fig5_bucket_1010.bit_vector() == 0b11000000

    def test_winner_disambiguation(self, fig5_bucket_1001):
        """Expansion 101 belongs to P3 (longer); 100/110/111 to P1."""
        assert fig5_bucket_1001.winner(0b101) == (7, 0b101)
        for expansion in (0b100, 0b110, 0b111):
            assert fig5_bucket_1001.winner(expansion) == (5, 0b1)

    def test_region_contents(self, fig5_bucket_1001):
        """Region in bit order: [P1, P3, P1, P1] (paper's lookup walkthrough)."""
        assert fig5_bucket_1001.region() == [1, 3, 1, 1]

    def test_uncovered_expansion(self, fig5_bucket_1001):
        assert fig5_bucket_1001.winner(0b000) is None
        assert fig5_bucket_1001.next_hop_for(0b011) is None

    def test_ones(self, fig5_bucket_1001, fig5_bucket_1010):
        assert fig5_bucket_1001.ones() == 4
        assert fig5_bucket_1010.ones() == 2


class TestMembership:
    def test_add_new_and_replace(self):
        bucket = Bucket(4, 3, 0)
        assert bucket.add(5, 1, 10) is True
        assert bucket.add(5, 1, 11) is False  # replace, not new
        assert bucket.originals[(5, 1)] == 11

    def test_remove(self):
        bucket = Bucket(4, 3, 0)
        bucket.add(5, 1, 10)
        assert bucket.remove(5, 1) == 10
        assert bucket.empty

    def test_remove_absent(self):
        bucket = Bucket(4, 3, 0)
        assert bucket.remove(5, 1) is None

    def test_len_and_has(self):
        bucket = Bucket(4, 3, 0)
        bucket.add(5, 1, 10)
        bucket.add(6, 2, 20)
        assert len(bucket) == 2
        assert bucket.has(5, 1) and not bucket.has(7, 0)


class TestCoverageSemantics:
    def test_base_length_prefix_covers_all(self):
        """An original of exactly the base length sets every bit."""
        bucket = Bucket(base=4, span=3, pointer=0)
        bucket.add(4, 0, 5)
        assert bucket.bit_vector() == 0xFF
        assert bucket.region() == [5] * 8

    def test_full_length_prefix_covers_one(self):
        bucket = Bucket(base=4, span=3, pointer=0)
        bucket.add(7, 0b010, 5)
        assert bucket.bit_vector() == 1 << 0b010
        assert bucket.region() == [5]

    def test_lpm_layering(self):
        """Shorter original is shadowed where a longer one overlaps."""
        bucket = Bucket(base=4, span=3, pointer=0)
        bucket.add(4, 0, 1)        # covers all 8 expansions
        bucket.add(6, 0b01, 2)     # covers 010, 011
        bucket.add(7, 0b011, 3)    # covers 011 only
        region = bucket.region()
        assert len(region) == 8
        assert region[0b010] == 2
        assert region[0b011] == 3
        assert region[0b000] == 1

    def test_span_zero_bucket(self):
        """A sub-cell with span 0 has 1-bit vectors (exact-length cell)."""
        bucket = Bucket(base=24, span=0, pointer=0)
        bucket.add(24, 0, 7)
        assert bucket.bit_vector() == 1
        assert bucket.region() == [7]

    def test_region_rank_consistency(self):
        """rank(bit e among set bits) indexes the region correctly for
        every covered expansion — the lookup's popcount arithmetic."""
        bucket = Bucket(base=4, span=4, pointer=0)
        bucket.add(6, 0b10, 4)
        bucket.add(8, 0b0111, 9)
        bucket.add(7, 0b100, 2)
        vector = bucket.bit_vector()
        region = bucket.region()
        for expansion in range(16):
            if not (vector >> expansion) & 1:
                assert bucket.next_hop_for(expansion) is None
                continue
            rank = bin(vector & ((1 << (expansion + 1)) - 1)).count("1")
            assert region[rank - 1] == bucket.next_hop_for(expansion)
