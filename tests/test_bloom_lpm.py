"""Unit tests for the Bloom-filter-fronted LPM baseline ([8])."""

import pytest

from repro.baselines import BinaryTrie, BloomFilteredLPM

from .conftest import sample_keys


@pytest.fixture
def lpm(small_table):
    return BloomFilteredLPM.build(small_table, seed=4)


class TestCorrectness:
    def test_equivalence_with_oracle(self, small_table, lpm, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 800):
            assert lpm.lookup(key) == oracle.lookup(key), hex(key)

    def test_false_positive_probes_fall_through(self, small_table, lpm, rng):
        """A Bloom false positive may trigger a wasted probe, but never a
        wrong answer — the exact table filters it."""
        oracle = BinaryTrie.from_table(small_table)
        wasted = 0
        for key in sample_keys(small_table, rng, 500):
            next_hop, probes = lpm.lookup_with_probes(key)
            assert next_hop == oracle.lookup(key)
            if next_hop is None and probes > 0:
                wasted += probes
        # Every probed length on a missing key is a Bloom false positive;
        # at ~10 bits/key the FP rate is ~1%, so the waste across
        # (keys x populated lengths) queries must stay a few percent.
        assert wasted < 0.03 * 500 * lpm.table_count()


class TestEfficiency:
    def test_expected_accesses_near_one(self, small_table, lpm, rng):
        """[8]'s claim: expected off-chip accesses ~1-2 per lookup for
        keys that hit (vs one probe per populated length naïvely)."""
        hit_keys = [
            key for key in sample_keys(small_table, rng, 600)
            if lpm.lookup(key) is not None
        ]
        mean = lpm.expected_offchip_accesses(hit_keys)
        assert 1.0 <= mean < 2.0
        assert lpm.table_count() > 5  # vs ~one probe per length naïvely

    def test_tables_still_one_per_length(self, small_table, lpm):
        """§2: [8] reduces tables *searched*, not tables *implemented*."""
        assert lpm.table_count() == len(small_table.stats().populated_lengths)

    def test_storage_split(self, small_table, lpm):
        bits = lpm.storage_bits()
        assert bits["bloom_filters"] > 0
        assert bits["hash_tables"] > bits["bloom_filters"]
