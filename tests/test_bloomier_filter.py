"""Unit tests for the Bloomier filter Index Table."""

import random

import pytest

from repro.bloomier import BloomierFilter, BloomierSetupError


def build(num_keys=2000, value_bits=12, seed=0, capacity=None, **kwargs):
    rng = random.Random(seed)
    keys = rng.sample(range(1 << 32), num_keys)
    items = {key: index % (1 << value_bits) for index, key in enumerate(keys)}
    bf = BloomierFilter(
        capacity=capacity or num_keys, key_bits=32, value_bits=value_bits,
        rng=random.Random(seed + 1), **kwargs,
    )
    report = bf.setup(items)
    return bf, items, report


class TestSetup:
    def test_all_values_retrievable(self):
        bf, items, report = build()
        assert report.encoded == len(items)
        assert all(bf.lookup(key) == value for key, value in items.items())

    def test_setup_report_counts(self):
        _bf, items, report = build(num_keys=500)
        assert report.encoded + len(report.spilled) == 500

    def test_shadow_matches_items(self):
        bf, items, _report = build(num_keys=300)
        assert bf.shadow == items
        assert len(bf) == 300

    def test_overfull_setup_rejected(self):
        bf = BloomierFilter(capacity=10, key_bits=32, value_bits=4)
        with pytest.raises(BloomierSetupError):
            bf.setup({key: 0 for key in range(11)})

    def test_empty_setup(self):
        bf = BloomierFilter(capacity=10, key_bits=32, value_bits=4)
        report = bf.setup({})
        assert report.encoded == 0

    def test_resetup_replaces_contents(self):
        bf, items, _report = build(num_keys=200)
        new_items = {key: (value + 1) % 4096 for key, value in items.items()}
        bf.setup(new_items)
        assert all(bf.lookup(key) == value for key, value in new_items.items())

    def test_m_over_n_must_cover_k(self):
        with pytest.raises(ValueError):
            BloomierFilter(capacity=10, key_bits=32, value_bits=4,
                           num_hashes=4, slots_per_key=3)

    def test_various_k(self):
        for k in (2, 3, 4, 5):
            bf, items, _report = build(
                num_keys=400, seed=k, num_hashes=k, slots_per_key=k,
            )
            assert all(bf.lookup(key) == value for key, value in items.items())


class TestLookupSemantics:
    def test_nonmember_returns_within_value_width(self):
        bf, items, _report = build(value_bits=10)
        rng = random.Random(99)
        for _ in range(100):
            probe = rng.getrandbits(32)
            if probe in items:
                continue
            assert 0 <= bf.lookup(probe) < (1 << 10)

    def test_false_positive_pointers_exist(self):
        """Non-member lookups produce *some* pointer — the false positives
        the Filter Table exists to kill (§4.2)."""
        bf, items, _report = build(num_keys=3000, value_bits=12, seed=5)
        rng = random.Random(123)
        hits = 0
        for _ in range(2000):
            probe = rng.getrandbits(32)
            if probe in items:
                continue
            if bf.lookup(probe) in range(3000):
                hits += 1
        assert hits > 0


class TestIncrementalInsert:
    def test_insert_then_lookup(self):
        bf, items, _report = build(num_keys=1000, seed=2, capacity=1400)
        rng = random.Random(7)
        inserted = {}
        for _ in range(200):
            key = rng.getrandbits(32)
            if key in items or key in inserted:
                continue
            if bf.try_insert(key, 1234 & ((1 << 12) - 1)):
                inserted[key] = 1234 & ((1 << 12) - 1)
        assert inserted, "expected some singleton inserts to succeed"
        assert all(bf.lookup(k) == v for k, v in inserted.items())

    def test_insert_does_not_corrupt_existing(self):
        bf, items, _report = build(num_keys=1000, seed=3, capacity=1500)
        rng = random.Random(8)
        for _ in range(300):
            key = rng.getrandbits(32)
            if key in bf.shadow:
                continue
            bf.try_insert(key, 7)
        assert all(bf.lookup(key) == value for key, value in items.items())

    def test_duplicate_insert_rejected(self):
        bf, items, _report = build(num_keys=100)
        key = next(iter(items))
        with pytest.raises(KeyError):
            bf.try_insert(key, 0)

    def test_insert_fails_without_singleton(self):
        """At high load some new keys find every slot already referenced."""
        bf, _items, _report = build(num_keys=2000, seed=4, capacity=4000)
        rng = random.Random(11)
        failures = 0
        for _ in range(4000):
            key = rng.getrandbits(32)
            if key in bf.shadow:
                continue
            if len(bf) >= bf.capacity:
                break
            if not bf.try_insert(key, 1):
                failures += 1
        assert failures > 0, "at high load some inserts must lack singletons"

    def test_insert_respects_capacity(self):
        bf = BloomierFilter(capacity=4, key_bits=32, value_bits=4,
                            rng=random.Random(0))
        bf.setup({1: 1, 2: 2, 3: 3, 4: 0})
        assert bf.try_insert(99, 1) is False

    def test_find_singleton_consistency(self):
        bf, _items, _report = build(num_keys=500, seed=6)
        rng = random.Random(13)
        for _ in range(100):
            key = rng.getrandbits(32)
            if key in bf.shadow:
                continue
            slot = bf.find_singleton(key)
            if slot is not None:
                assert slot in bf.neighborhood(key)


class TestAccounting:
    def test_storage_bits(self):
        bf = BloomierFilter(capacity=1000, key_bits=32, value_bits=10)
        assert bf.storage_bits() == bf.num_slots * 10
        assert bf.num_slots == 3 * (3 * 1000 // 3)

    def test_load_factor(self):
        bf, _items, _report = build(num_keys=100)
        assert bf.load_factor() == pytest.approx(1.0)
