"""Regression tests for two silent-wrong-answer bugs in the Bloomier layer.

Both bugs produced *wrong lookups with no error* — the worst failure class
for a collision-free forwarding structure — and both fail loudly here on
the pre-fix code:

1. ``PartitionedBloomierFilter.insert`` never checked the spillover TCAM,
   so re-inserting a previously-spilled key with a new value could encode
   it into the Index Table while ``lookup`` kept answering from the stale
   TCAM entry (the TCAM is consulted first) forever.
2. ``setup`` rehashed the hash functions on every peel stall but only
   rewrote the table after success; a setup that ultimately raised
   ``BloomierSetupError`` left *new* hash functions over the *old* table,
   so every previously-encoded key decoded garbage.
"""

import random

import pytest

from repro.bloomier import (
    BloomierSetupError,
    InsertOutcome,
    PartitionedBloomierFilter,
    make_backend,
)
from repro.faults import FaultInjector

BACKENDS = ("bloomier", "fuse")


def _build_with_spill(backend, max_seeds=4000):
    """A 1-partition filter whose setup spilled at least one key.

    Tiny key space + tight slot budget makes unpeelable key pairs (same
    neighborhood in every segment) likely; scan seeds until one setup
    reports a spill.  ``max_rehash=0`` puts the spill budget in play on
    the first stall instead of rehashing around it.
    """
    for seed in range(max_seeds):
        pbf = PartitionedBloomierFilter(
            capacity=8,
            key_bits=4,
            value_bits=8,
            partitions=1,
            rng=random.Random(seed),
            max_rehash=0,
            spill_capacity=8,
            backend=backend,
        )
        items = {key: key + 1 for key in range(8)}
        report = pbf.setup(items)
        if report.spilled:
            return pbf, items, report
    raise AssertionError(f"no spilling seed found for {backend!r}")


@pytest.mark.parametrize("backend", BACKENDS)
def test_spilled_key_reinsert_not_shadowed_by_stale_tcam(backend):
    """Bug 1: a re-inserted spilled key must serve its *new* value."""
    pbf, items, report = _build_with_spill(backend)
    key = next(iter(report.spilled))
    old_value = items[key]
    assert pbf.lookup(key) == old_value

    new_value = old_value ^ 0xFF
    pbf.delete(key)
    pbf.insert(key, new_value)
    assert pbf.lookup(key) == new_value
    assert pbf.get(key) == new_value


@pytest.mark.parametrize("backend", BACKENDS)
def test_reinsert_while_still_spilled_refreshes_tcam(backend):
    """Bug 1, the direct shadowing path: insert over a live TCAM entry.

    The pre-fix ``insert`` encoded the new value into the Index Table (or
    rebuilt the group with it) while the stale TCAM entry kept winning
    every lookup.  Post-fix it either migrates the key into the table
    (evicting the TCAM entry) or refreshes the TCAM value in place —
    both observable as ``lookup`` returning the new value.
    """
    pbf, items, report = _build_with_spill(backend)
    key = next(iter(report.spilled))
    new_value = items[key] ^ 0xFF
    outcome = pbf.insert(key, new_value)
    assert outcome in (InsertOutcome.SINGLETON, InsertOutcome.SPILL_REFRESH)
    assert pbf.lookup(key) == new_value
    assert pbf.get(key) == new_value
    # The TCAM and the per-group spill bookkeeping must still agree
    # (INV401's invariant): either both dropped the key or both updated.
    group_spilled = pbf._spilled_by_group[pbf.group_of(key)]
    if outcome is InsertOutcome.SPILL_REFRESH:
        assert group_spilled[key] == new_value
        assert pbf.spillover.lookup(key) == new_value
    else:
        assert key not in group_spilled
        assert pbf.spillover.lookup(key) is None


@pytest.mark.parametrize("backend", BACKENDS)
def test_failed_setup_leaves_previous_encoding_decodable(backend):
    """Bug 2: a failed re-setup must not skew the surviving table.

    The stall is injected into the *peel step* (``mode="stall"``), so the
    real setup loop runs: it rehashes through its whole ``max_rehash``
    budget and then gives up.  Pre-fix, those rehashes left fresh hash
    functions addressing a table encoded under the old ones — every
    lookup silently garbage.  Post-fix the hash state is rolled back
    before the error propagates.
    """
    rng = random.Random(7)
    table = make_backend(
        backend, capacity=64, key_bits=16, value_bits=12,
        rng=random.Random(3), max_rehash=4,
    )
    items = {rng.getrandbits(16): rng.getrandbits(12) for _ in range(50)}
    report = table.setup(items)
    assert not report.spilled
    encoded_before = dict(table.shadow)

    injector = FaultInjector(seed=1)
    with injector.force_setup_failure(times=1, mode="stall") as delivered:
        with pytest.raises(BloomierSetupError):
            table.setup({rng.getrandbits(16): 1 for _ in range(50)})
    assert delivered[0] == 1

    assert table.shadow == encoded_before
    for key, value in encoded_before.items():
        assert table.lookup(key) == value, (
            f"key {key:#x} decodes garbage after failed re-setup"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_failed_setup_then_successful_retry(backend):
    """After a failed setup the structure is fully usable: the old keys
    serve, and a later (un-sabotaged) setup converges normally."""
    rng = random.Random(21)
    table = make_backend(
        backend, capacity=64, key_bits=16, value_bits=12,
        rng=random.Random(9), max_rehash=4,
    )
    first = {rng.getrandbits(16): rng.getrandbits(12) for _ in range(40)}
    table.setup(first)

    injector = FaultInjector(seed=2)
    second = {rng.getrandbits(16): rng.getrandbits(12) for _ in range(40)}
    with injector.force_setup_failure(times=1, mode="stall"):
        with pytest.raises(BloomierSetupError):
            table.setup(second)

    report = table.setup(second)
    for key, value in second.items():
        if key not in report.spilled:
            assert table.lookup(key) == value
