"""The chaos harness: gates, determinism, and the CLI entry point."""

import json

import pytest

from repro.faults.chaos import ChaosReport, run_chaos

SMALL = dict(table_size=700, rounds=6, churn_per_round=20,
             faults_per_round=25, batch_size=128, seed=11,
             faults_required=100)


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry per module: fault/degrade runs record long
    lock holds and large counter values that must not leak into other
    modules' global-registry assertions (e.g. the serve p99 gate)."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)



@pytest.fixture(scope="module")
def small_report():
    return run_chaos(**SMALL)


def test_small_run_passes_every_gate(small_report):
    assert small_report.ok, small_report.failures
    assert small_report.wrong_answers == 0
    assert small_report.detection_rate >= 0.99
    assert small_report.setup_errors_escaped == 0
    assert small_report.final_state == "healthy"


def test_small_run_exercises_the_failure_paths(small_report):
    # The schedule guarantees these paths actually ran — a chaos run that
    # quietly skipped its faults would pass the gates vacuously.
    assert small_report.faults_injected >= SMALL["faults_required"]
    assert small_report.setup_failures_forced >= 2
    assert small_report.setup_failures_absorbed >= 1
    assert small_report.degraded_entries >= 1
    assert small_report.recoveries >= 1
    assert small_report.uncorrectable_events >= 1
    assert small_report.malformed_rejected > 0
    assert small_report.malformed_accepted == 0
    assert small_report.lookups_checked > 0


def test_chaos_is_deterministic_per_seed(small_report):
    again = run_chaos(**SMALL)
    assert again.to_dict() == small_report.to_dict()


def test_report_gates_fire():
    report = ChaosReport(rounds=1, faults_required=10)
    report.faults_injected = 500
    report.single_bit_faults = 100
    report.single_bit_detected = 90  # below the 99% gate
    report.wrong_answers = 3
    report.setup_errors_escaped = 1
    report.setup_failures_forced = 2
    report.final_state = "degraded"
    report.evaluate()
    assert not report.ok
    text = " ".join(report.failures)
    assert "silently-wrong" in text
    assert "detection" in text
    assert "escaped" in text
    assert "degraded" in text


def test_report_gates_pass_on_clean_run():
    report = ChaosReport(rounds=1, faults_required=10)
    report.faults_injected = 500
    report.single_bit_faults = 100
    report.single_bit_detected = 100
    report.setup_failures_forced = 2
    report.final_state = "healthy"
    report.evaluate()
    assert report.ok, report.failures


def test_cli_smoke_passes_and_emits_json(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["chaos", "--smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["faults_injected"] >= 500
    assert payload["wrong_answers"] == 0
    assert payload["detection_rate"] >= 0.99
    assert payload["final_state"] == "healthy"
