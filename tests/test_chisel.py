"""Unit and cross-validation tests for the full Chisel LPM engine."""

import random

import pytest

from repro.baselines import BinaryTrie
from repro.core import ChiselConfig, ChiselLPM, UpdateKind
from repro.prefix import Prefix, RoutingTable, key_from_string

from .conftest import sample_keys


@pytest.fixture
def engine(small_table):
    return ChiselLPM.build(small_table, ChiselConfig(seed=9))


class TestBuild:
    def test_route_count_preserved(self, small_table, engine):
        assert len(engine) == len(small_table)

    def test_collapsed_at_most_originals(self, engine, small_table):
        assert engine.collapsed_key_count() <= len(small_table)

    def test_subcells_ordered_longest_first(self, engine):
        bases = [cell.base for cell in engine.subcells]
        assert bases == sorted(bases, reverse=True)

    def test_width_mismatch_rejected(self, small_table):
        with pytest.raises(ValueError):
            ChiselLPM.build(small_table, ChiselConfig(width=128))

    def test_default_config(self, small_table):
        assert ChiselLPM.build(small_table).config.width == 32

    def test_greedy_coverage_build(self, small_table):
        engine = ChiselLPM.build(
            small_table, ChiselConfig(coverage="greedy", seed=2)
        )
        assert len(engine) == len(small_table)

    def test_iter_routes_roundtrip(self, small_table, engine):
        recovered = dict(engine.iter_routes())
        assert recovered == dict(iter(small_table))


class TestLookupCorrectness:
    def test_matches_binary_trie_oracle(self, small_table, engine, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 2000):
            assert engine.lookup(key) == oracle.lookup(key), hex(key)

    def test_explicit_hierarchy(self):
        table = RoutingTable.from_strings([
            ("0.0.0.0/0", 1),
            ("10.0.0.0/8", 2),
            ("10.1.0.0/16", 3),
            ("10.1.2.0/24", 4),
            ("10.1.2.128/25", 5),
        ])
        engine = ChiselLPM.build(table, ChiselConfig(seed=3))
        cases = {
            "8.8.8.8": 1,
            "10.9.9.9": 2,
            "10.1.9.9": 3,
            "10.1.2.3": 4,
            "10.1.2.200": 5,
        }
        for address, expected in cases.items():
            assert engine.lookup(key_from_string(address)) == expected

    def test_priority_encoder_reports_subcell(self, engine, small_table, rng):
        hits = 0
        for key in sample_keys(small_table, rng, 500):
            next_hop, base = engine.lookup_with_subcell(key)
            if next_hop is None:
                assert base is None
            else:
                hits += 1
                assert any(cell.base == base for cell in engine.subcells)
        assert hits > 0

    def test_miss_on_empty_table(self):
        table = RoutingTable(width=32)
        engine = ChiselLPM.build(table, ChiselConfig(seed=1))
        assert engine.lookup(key_from_string("1.2.3.4")) is None

    def test_default_route_only(self):
        table = RoutingTable.from_strings([("0.0.0.0/0", 7)])
        engine = ChiselLPM.build(table, ChiselConfig(seed=1))
        assert engine.lookup(0) == 7
        assert engine.lookup((1 << 32) - 1) == 7

    def test_full_length_prefixes(self):
        """Host routes (/32) must work — the top tiled interval."""
        table = RoutingTable.from_strings([
            ("10.0.0.1/32", 1),
            ("10.0.0.0/8", 2),
        ])
        engine = ChiselLPM.build(table, ChiselConfig(seed=4))
        assert engine.lookup(key_from_string("10.0.0.1")) == 1
        assert engine.lookup(key_from_string("10.0.0.2")) == 2


class TestIPv6:
    def test_ipv6_build_and_lookup(self):
        table = RoutingTable.from_strings([
            ("2001:db8::/32", 1),
            ("2001:db8:1::/48", 2),
            ("::/0", 3),
        ])
        engine = ChiselLPM.build(table, ChiselConfig(width=128, seed=5))
        assert engine.lookup(key_from_string("2001:db8:1::5")) == 2
        assert engine.lookup(key_from_string("2001:db8:2::5")) == 1
        assert engine.lookup(key_from_string("2002::1")) == 3

    def test_ipv6_synthetic_vs_oracle(self, rng):
        from repro.workloads import ipv6_table

        table = ipv6_table(600, seed=12)
        engine = ChiselLPM.build(table, ChiselConfig(width=128, seed=6))
        oracle = BinaryTrie.from_table(table)
        for key in sample_keys(table, rng, 600):
            assert engine.lookup(key) == oracle.lookup(key)


class TestDynamicUpdates:
    def test_announce_then_lookup(self, engine):
        prefix = Prefix.from_string("203.0.113.0/24")
        engine.announce(prefix, 77)
        assert engine.lookup(key_from_string("203.0.113.9")) == 77

    def test_withdraw_then_miss_or_fallback(self, engine, small_table):
        prefix, _next_hop = next(iter(small_table))
        engine.withdraw(prefix)
        reference = RoutingTable(width=32)
        for p, nh in small_table:
            if p != prefix:
                reference.add(p, nh)
        oracle = BinaryTrie.from_table(reference)
        probe = prefix.network_int()
        assert engine.lookup(probe) == oracle.lookup(probe)

    def test_update_kinds_route_correctly(self, engine):
        p = Prefix.from_string("198.51.100.0/24")
        assert engine.announce(p, 1) in (UpdateKind.SINGLETON,
                                         UpdateKind.RESETUP,
                                         UpdateKind.ADD_PC)
        assert engine.announce(p, 2) is UpdateKind.NEXT_HOP
        assert engine.withdraw(p) is UpdateKind.WITHDRAW

    def test_purge_dirty_engine_wide(self, engine, small_table):
        victims = [p for p, _nh in list(small_table)[:50]]
        for victim in victims:
            engine.withdraw(victim)
        purged = engine.purge_dirty()
        assert purged >= 0  # only emptied buckets are purged
        assert len(engine) == len(small_table) - len(victims)

    def test_words_written_accumulates(self, engine):
        before = engine.words_written()
        engine.announce(Prefix.from_string("192.0.2.0/24"), 5)
        assert engine.words_written() > before


class TestStorageAccounting:
    def test_components_present(self, engine):
        bits = engine.storage_bits()
        assert set(bits) == {"index", "filter", "bitvector"}
        assert engine.total_storage_bits() == sum(bits.values())

    def test_storage_scales_with_table(self):
        from repro.workloads import synthetic_table

        small = ChiselLPM.build(synthetic_table(500, seed=1), ChiselConfig(seed=1))
        large = ChiselLPM.build(synthetic_table(4000, seed=1), ChiselConfig(seed=1))
        assert large.total_storage_bits() > small.total_storage_bits()
