"""Tests for the functional Chisel-with-CPE control variant (§6.2)."""

import pytest

from repro.baselines import BinaryTrie, ChiselCPELpm
from repro.core import ChiselConfig, ChiselLPM

from .conftest import sample_keys


@pytest.fixture
def variant(small_table):
    return ChiselCPELpm.build(small_table, stride=4, seed=5)


class TestCorrectness:
    def test_equivalence_with_oracle(self, small_table, variant, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 1000):
            assert variant.lookup(key) == oracle.lookup(key), hex(key)

    def test_agrees_with_real_chisel(self, small_table, variant, rng):
        """Both §6.2 variants must be decision-equivalent; they differ
        only in storage."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=6))
        for key in sample_keys(small_table, rng, 500):
            assert variant.lookup(key) == engine.lookup(key)

    def test_zero_false_positives(self, variant, rng):
        """Filter tables must kill every Bloomier false positive."""
        misses = 0
        for _ in range(2000):
            key = rng.getrandbits(32)
            result = variant.lookup(key)
            if result is None:
                misses += 1
        assert misses > 0  # random keys do miss; none crashed or fabricated


class TestStorageStory:
    def test_expansion_inflates_entries(self, small_table, variant):
        assert variant.expanded_count > len(small_table)
        assert 1.5 < variant.expansion_factor < 4.0

    def test_storage_exceeds_pc_chisel(self, small_table, variant):
        """The whole point of Fig. 9: the CPE variant pays more on-chip
        bits than real Chisel despite skipping the Bit-vector Table."""
        engine = ChiselLPM.build(
            small_table, ChiselConfig(seed=7, coverage="greedy")
        )
        cpe_bits = sum(variant.storage_bits().values())
        pc_bits = engine.total_storage_bits()
        assert cpe_bits > pc_bits

    def test_no_bitvector_component(self, variant):
        assert set(variant.storage_bits()) == {"index", "filter"}
