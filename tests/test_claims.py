"""Tests for the programmatic paper-claims checker."""

import pytest

from repro.analysis.claims import ClaimResult, claims_report, evaluate_claims
from repro.cli import main


class TestClaims:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_claims(table_size=8000)

    def test_all_claims_pass(self, results):
        failing = [r.claim for r in results if not r.passed]
        assert not failing, failing

    def test_coverage_of_paper_sections(self, results):
        sources = {result.source for result in results}
        # Every headline locus is checked.
        for expected in ("§4.1/Fig. 3", "§4.2", "Fig. 8", "Fig. 9",
                         "Fig. 10", "Fig. 12", "Fig. 13", "Fig. 16",
                         "§6.7.1"):
            assert expected in sources

    def test_at_least_a_dozen_claims(self, results):
        assert len(results) >= 12

    def test_report_renders(self, results):
        report = claims_report(results)
        assert "PASS" in report
        assert f"{len(results)}/{len(results)} claims PASS" in report

    def test_failed_claim_renders_fail(self):
        fake = [ClaimResult("x", "1", "2", False, "§0")]
        assert "FAIL" in claims_report(fake)
        assert "0/1" in claims_report(fake)

    def test_cli_verify_claims(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        exit_code = main(["verify-claims", "--table-size", "8000"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "claims PASS" in output
        assert (tmp_path / "claims.txt").exists()
