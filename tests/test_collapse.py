"""Unit tests for the prefix-collapsing planner."""

import pytest

from repro.core.collapse import (
    CollapsePlan,
    SubCellPlan,
    collapsed_count,
    group_by_subcell,
    plan_for_table,
    plan_full,
    plan_greedy,
)
from repro.prefix import Prefix, RoutingTable


class TestSubCellPlan:
    def test_covers_interval(self):
        cell = SubCellPlan(base=8, span=4)
        assert cell.covers(8) and cell.covers(12)
        assert not cell.covers(7) and not cell.covers(13)

    def test_top(self):
        assert SubCellPlan(20, 4).top == 24


class TestGreedyPlanning:
    def test_paper_section_4_3_3_grouping(self):
        """Greedy from the shortest populated length, absorbing up to stride."""
        plan = plan_greedy([8, 10, 12, 16, 24], stride=4, width=32)
        cells = [(c.base, c.top) for c in plan]
        assert cells == [(8, 12), (16, 16), (24, 24)]

    def test_dense_lengths(self):
        plan = plan_greedy(range(8, 33), stride=4, width=32)
        bases = [c.base for c in plan]
        assert bases == [8, 13, 18, 23, 28]
        assert all(c.span == 4 for c in list(plan)[:-1])

    def test_single_length(self):
        plan = plan_greedy([24], stride=4, width=32)
        assert [(c.base, c.span) for c in plan] == [(24, 0)]

    def test_duplicates_ignored(self):
        plan = plan_greedy([24, 24, 24], stride=4, width=32)
        assert len(plan) == 1


class TestFullPlanning:
    def test_tiles_whole_width(self):
        plan = plan_full(stride=4, width=32)
        for length in range(33):
            assert plan.has_interval_for(length)

    def test_intervals_disjoint_and_ordered(self):
        plan = plan_full(stride=4, width=32)
        cells = list(plan)
        for before, after in zip(cells, cells[1:]):
            assert after.base == before.top + 1

    def test_last_interval_clipped_to_width(self):
        plan = plan_full(stride=4, width=32)
        assert list(plan)[-1].top == 32

    def test_ipv6_tiling(self):
        plan = plan_full(stride=4, width=128)
        assert plan.has_interval_for(128)
        assert len(plan) == 26  # ceil(129 / 5)


class TestCollapsePlanValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            CollapsePlan([SubCellPlan(8, 4), SubCellPlan(10, 4)], 32)

    def test_interval_for_gap_raises(self):
        plan = plan_greedy([8, 24], stride=2, width=32)
        with pytest.raises(KeyError):
            plan.interval_for(16)

    def test_plan_for_table_modes(self):
        table = RoutingTable.from_strings([("10.0.0.0/8", 1), ("10.1.0.0/16", 2)])
        greedy = plan_for_table(table, 4, "greedy")
        full = plan_for_table(table, 4, "full")
        assert len(greedy) == 2
        assert len(full) == 7

    def test_unknown_mode_rejected(self):
        table = RoutingTable.from_strings([("10.0.0.0/8", 1)])
        with pytest.raises(ValueError):
            plan_for_table(table, 4, "sparse")


class TestGrouping:
    def test_fig5_buckets(self, tiny_table):
        """Fig. 5: with stride 3 over lengths {5,6,7}, P1 and P3 share the
        collapsed bucket 1001 and P2 sits alone in 1010."""
        plan = CollapsePlan([SubCellPlan(4, 3)], 32)
        # Drop the /0 default route for the figure's exact scenario.
        table = RoutingTable(width=32)
        for prefix, next_hop in tiny_table:
            if prefix.length:
                table.add(prefix, next_hop)
        grouped = group_by_subcell(table, plan)
        cell = list(plan)[0]
        buckets = grouped[cell]
        assert set(buckets) == {0b1001, 0b1010}
        assert buckets[0b1001] == {(5, 0b1): 1, (7, 0b101): 3}
        assert buckets[0b1010] == {(6, 0b11): 2}

    def test_collapsed_count_merges_siblings(self):
        table = RoutingTable(width=32)
        base = Prefix.from_string("10.1.0.0/24").value
        for offset in range(16):
            table.add(Prefix(base + offset, 24, 32), offset)
        plan = plan_full(stride=4, width=32)
        # 16 consecutive /24s collapse into a single /20 in the [20,24] cell.
        assert collapsed_count(table, plan) == 1

    def test_collapsed_count_never_exceeds_originals(self, small_table):
        plan = plan_for_table(small_table, 4, "greedy")
        assert collapsed_count(small_table, plan) <= len(small_table)

    def test_group_membership_total(self, small_table):
        plan = plan_for_table(small_table, 4, "full")
        grouped = group_by_subcell(small_table, plan)
        total = sum(
            len(originals)
            for buckets in grouped.values()
            for originals in buckets.values()
        )
        assert total == len(small_table)
