"""Unit tests for configuration validation, event taxonomy, and report
helpers — the small modules everything else leans on."""

import pytest

from repro.analysis.report import banner, experiment_scale, format_table
from repro.core import CapacityError, ChiselConfig, UpdateKind
from repro.core.config import ChiselConfig as ConfigAlias


class TestChiselConfig:
    def test_defaults_are_paper_design_point(self):
        config = ChiselConfig()
        assert config.num_hashes == 3
        assert config.slots_per_key == 3
        assert config.stride == 4
        assert config.width == 32

    def test_frozen(self):
        config = ChiselConfig()
        with pytest.raises(AttributeError):
            config.stride = 5

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            ChiselConfig(stride=0)

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            ChiselConfig(coverage="sparse")
        for mode in ("greedy", "full", "optimal"):
            assert ChiselConfig(coverage=mode).coverage == mode

    def test_slots_must_cover_hashes(self):
        with pytest.raises(ValueError):
            ChiselConfig(num_hashes=4, slots_per_key=3)

    def test_alias_is_same_class(self):
        assert ConfigAlias is ChiselConfig

    def test_equality_by_value(self):
        assert ChiselConfig(seed=1) == ChiselConfig(seed=1)
        assert ChiselConfig(seed=1) != ChiselConfig(seed=2)


class TestUpdateKind:
    def test_all_categories_present(self):
        assert {kind.value for kind in UpdateKind} == {
            "withdraws", "route_flaps", "next_hops",
            "add_pc", "singletons", "resetups",
        }

    def test_incremental_partition(self):
        incremental = {kind for kind in UpdateKind if kind.incremental}
        assert UpdateKind.RESETUP not in incremental
        assert len(incremental) == len(UpdateKind) - 1

    def test_capacity_error_is_runtime_error(self):
        assert issubclass(CapacityError, RuntimeError)


class TestReportHelpers:
    def test_banner_frames_text(self):
        text = banner(["alpha", "beta gamma"])
        lines = text.splitlines()
        assert lines[0] == "=" * len("beta gamma")
        assert lines[-1] == lines[0]

    def test_experiment_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert experiment_scale() == 0.5
        monkeypatch.delenv("REPRO_SCALE")
        assert experiment_scale() == 0.25

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_format_table_scientific_for_extremes(self):
        text = format_table([{"p": 1.5e-9}])
        assert "e-09" in text

    def test_format_table_missing_cell(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # renders without KeyError
