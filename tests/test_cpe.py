"""Unit tests for controlled prefix expansion."""

import pytest

from repro.prefix import (
    Prefix,
    PrefixError,
    RoutingTable,
    average_expansion_factor,
    expand_table,
    expansion_counts,
    optimal_targets,
    pick_target_length,
    targets_for_stride,
    worst_case_expansion_factor,
)


@pytest.fixture
def table():
    return RoutingTable.from_strings([
        ("10.0.0.0/8", 1),
        ("10.128.0.0/9", 2),
        ("10.64.0.0/10", 3),
    ])


class TestTargets:
    def test_pick_smallest_covering(self):
        assert pick_target_length(9, [8, 12, 16]) == 12

    def test_pick_exact(self):
        assert pick_target_length(12, [8, 12, 16]) == 12

    def test_pick_missing_raises(self):
        with pytest.raises(PrefixError):
            pick_target_length(20, [8, 12, 16])

    def test_targets_for_stride_groups(self):
        # Populated {8, 10, 12, 16, 24}, stride 4: [8..12] -> 12, [16..20]->16, [24]->24
        assert targets_for_stride([8, 10, 12, 16, 24], 4) == [12, 16, 24]

    def test_targets_for_stride_single_length(self):
        assert targets_for_stride([24], 4) == [24]


class TestExpansion:
    def test_expand_table_counts(self, table):
        expanded = expand_table(table, [10])
        # /8 -> 4 entries, /9 -> 2, /10 -> 1, overlaps collapse.
        assert all(p.length == 10 for p in expanded)
        assert len(expanded) == 4

    def test_lpm_precedence_preserved(self, table):
        """Longer originals must win in overlapping expansions."""
        expanded = expand_table(table, [10])
        # 10.64/10 falls inside 10/8's expansion but keeps next hop 3.
        assert expanded[Prefix.from_string("10.64.0.0/10")] == 3
        # 10.128/9's two expansions beat 10/8's.
        assert expanded[Prefix.from_string("10.128.0.0/10")] == 2
        assert expanded[Prefix.from_string("10.192.0.0/10")] == 2
        assert expanded[Prefix.from_string("10.0.0.0/10")] == 1

    def test_expansion_counts_no_dedup(self, table):
        total, originals = expansion_counts(table, [10])
        assert originals == 3
        assert total == 4 + 2 + 1  # provisioning counts, before overlap

    def test_average_expansion_factor(self, table):
        assert average_expansion_factor(table, [10]) == pytest.approx(7 / 3)

    def test_equivalence_to_original_lookup(self, table):
        """CPE-expanded table must produce identical LPM answers."""
        expanded_table = RoutingTable(width=32)
        for prefix, next_hop in expand_table(table, [10]).items():
            expanded_table.add(prefix, next_hop)
        for key in (10 << 24, (10 << 24) | (200 << 16), (10 << 24) | (70 << 16), 0):
            assert expanded_table.lookup(key) == table.lookup(key)


class TestWorstCase:
    def test_worst_case_factor_spacing(self):
        # Targets every 4 lengths: a prefix 1 above a target expands 2**3.
        assert worst_case_expansion_factor([4, 8, 12], 32) == 1 << 4

    def test_worst_case_factor_first_gap(self):
        assert worst_case_expansion_factor([3], 32) == 8

    def test_worst_case_single_dense(self):
        assert worst_case_expansion_factor([0, 1, 2], 32) == 1


class TestOptimalTargets:
    def test_must_cover_max_length(self):
        targets = optimal_targets({16: 100, 24: 500}, 3)
        assert max(targets) == 24

    def test_heavy_length_becomes_target(self):
        """The DP must not expand the /24 mass when given enough levels."""
        histogram = {16: 10, 20: 10, 24: 1000}
        targets = optimal_targets(histogram, 3)
        assert 24 in targets and 16 in targets and 20 in targets

    def test_fewer_levels_than_lengths_minimizes_cost(self):
        histogram = {8: 1, 16: 1, 24: 1000}
        targets = optimal_targets(histogram, 2)
        # Expanding the single /8 or /16 beats expanding 1000 /24s.
        assert 24 in targets

    def test_empty_histogram(self):
        assert optimal_targets({}, 3) == []

    def test_single_level(self):
        assert optimal_targets({8: 5, 12: 5}, 1) == [12]

    def test_optimal_beats_or_ties_stride_grouping(self):
        histogram = {8: 50, 16: 300, 19: 100, 22: 400, 24: 5000}
        table = RoutingTable(width=32)
        value = 0
        for length, count in histogram.items():
            for _ in range(count):
                table.add(Prefix(value % (1 << length), length, 32), 1)
                value += 7
        stride_targets = targets_for_stride(sorted(histogram), 4)
        best_targets = optimal_targets(histogram, len(stride_targets))
        stride_cost, _n = expansion_counts(table, stride_targets)
        best_cost, _n = expansion_counts(table, best_targets)
        assert best_cost <= stride_cost
