"""A miniature run of the kill-anywhere crash harness (``repro.store.crash``).

``chisel-repro crash --smoke`` runs the bigger CI campaign; this keeps a
small deterministic kill matrix plus the full corruption matrix inside
the tier-1 suite, so a regression in fsync ordering, replay chaining or
damage classification fails fast and locally.
"""

import pytest

from repro.store.crash import CrashReport, enumerate_crashpoints, run_crash
from repro.store.crash import _Workload


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry: crash runs inflate store/recovery counters
    that other modules' global-registry assertions must not observe."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def test_tiny_kill_and_corruption_matrix():
    report = run_crash(table_size=120, updates=9, every_records=4,
                       seed=11, probes=12)
    assert report.ok, report.failures
    # Every enumerated crashpoint actually killed the writer.
    assert report.kills_delivered == report.kill_points > 0
    # Acknowledged updates were never lost, and nothing was silently wrong.
    assert report.seq_regressions == 0
    assert report.wrong_answers == 0
    assert report.lookups_checked > 0
    # Kills before the first durable checkpoint are the only refusals.
    assert report.boots_refused == report.refusals_legitimate
    # The matrix exercised the interesting shapes at least once.
    assert report.torn_tails > 0
    assert report.corruption_passed == report.corruption_cases == 6


def test_crashpoint_enumeration_covers_log_and_checkpoint_boundaries():
    import shutil

    workload = _Workload(table_size=100, updates=5, seed=4,
                         every_records=3, probes=4)
    points, directory = enumerate_crashpoints(workload)
    shutil.rmtree(directory, ignore_errors=True)
    tags = {tag for tag, _durable, _renamed in points}
    for expected in ("log:append-pre", "log:torn", "log:written",
                     "log:durable", "ckpt:pre", "ckpt:tmp-torn",
                     "ckpt:tmp-durable", "ckpt:renamed",
                     "ckpt:dir-durable", "ckpt:log-rotated",
                     "ckpt:pruned"):
        assert expected in tags, f"crashpoint {expected} never fired"
    # durable_seq is monotonic along the trace — the conservative floor
    # the recovery gate compares against never moves backwards.
    durables = [durable for _tag, durable, _renamed in points]
    assert durables == sorted(durables)


def test_report_gates_fire():
    report = CrashReport(kill_points=3, kills_delivered=2,
                         wrong_answers=1, lookups_checked=10,
                         corruption_cases=1, corruption_passed=0,
                         case_results={"torn-final-record": "boom"})
    report.evaluate()
    assert not report.ok
    joined = " ".join(report.failures)
    assert "silently-wrong" in joined
    assert "kills" in joined
    assert "torn-final-record" in joined
