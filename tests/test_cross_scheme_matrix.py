"""Cross-scheme agreement matrix: every LPM implementation, several table
shapes, identical answers.  The widest differential net in the suite."""

import random

import pytest

from repro.baselines import (
    BinarySearchLengthsLPM,
    BinaryTrie,
    BloomFilteredLPM,
    ChiselCPELpm,
    EBFCPELpm,
    NaiveHashLPM,
    TCAM,
    TreeBitmap,
)
from repro.core import ChiselConfig, ChiselLPM
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthetic_table

from .conftest import sample_keys


def dense_table():
    """Every length populated, nested chains."""
    rng = random.Random(1)
    table = RoutingTable(width=32, name="dense")
    for length in range(33):
        for _ in range(8):
            value = rng.getrandbits(length) if length else 0
            table.add(Prefix(value, length, 32), rng.randrange(1, 200))
    return table


def sparse_table():
    """Two far-apart lengths only."""
    rng = random.Random(2)
    table = RoutingTable(width=32, name="sparse")
    for _ in range(150):
        table.add(Prefix(rng.getrandbits(8), 8, 32), rng.randrange(1, 200))
        table.add(Prefix(rng.getrandbits(28), 28, 32), rng.randrange(1, 200))
    return table


def bgp_table():
    return synthetic_table(1500, seed=3, name="bgp")


TABLES = [dense_table, sparse_table, bgp_table]

BUILDERS = {
    "chisel": lambda t: ChiselLPM.build(t, ChiselConfig(seed=11)),
    "chisel_greedy": lambda t: ChiselLPM.build(
        t, ChiselConfig(seed=12, coverage="greedy")
    ),
    "chisel_optimal": lambda t: ChiselLPM.build(
        t, ChiselConfig(seed=13, coverage="optimal")
    ),
    "chisel_cpe": lambda t: ChiselCPELpm.build(t, seed=14),
    "tree_bitmap3": lambda t: TreeBitmap.from_table(t, stride=3),
    "tree_bitmap5": lambda t: TreeBitmap.from_table(t, stride=5),
    "naive_hash": lambda t: NaiveHashLPM.build(t, seed=15),
    "bloom_lpm": lambda t: BloomFilteredLPM.build(t, seed=16),
    "waldvogel": lambda t: BinarySearchLengthsLPM.build(t),
    "ebf_cpe": lambda t: EBFCPELpm.build(t, table_factor=8.0, seed=17),
    "tcam": lambda t: TCAM.from_table(t),
}


@pytest.mark.parametrize("make_table", TABLES,
                         ids=[f.__name__ for f in TABLES])
def test_all_schemes_agree(make_table, rng):
    table = make_table()
    oracle = BinaryTrie.from_table(table)
    engines = {name: build(table) for name, build in BUILDERS.items()}
    keys = sample_keys(table, rng, 600)
    for key in keys:
        expected = oracle.lookup(key)
        for name, engine in engines.items():
            assert engine.lookup(key) == expected, (
                table.name, name, hex(key)
            )
