"""Deeper sweeps and stateful checks across the remaining surfaces:
stride/width sweeps of the engine, k-sweeps of the Bloomier stack,
stateful EBF updates, and interleaved Tree Bitmap mutation."""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.baselines import BinaryTrie, ExtendedBloomFilter, TreeBitmap
from repro.bloomier import PartitionedBloomierFilter
from repro.core import ChiselConfig, ChiselLPM
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthetic_table

from .conftest import sample_keys


class TestEngineParameterSweeps:
    @pytest.mark.parametrize("stride", [1, 2, 3, 5, 6])
    def test_strides_vs_oracle(self, stride, rng):
        table = synthetic_table(1200, seed=stride * 7)
        engine = ChiselLPM.build(
            table, ChiselConfig(stride=stride, seed=stride)
        )
        oracle = BinaryTrie.from_table(table)
        for key in sample_keys(table, rng, 400):
            assert engine.lookup(key) == oracle.lookup(key), (stride, hex(key))

    @pytest.mark.parametrize("width", [8, 16, 24])
    def test_nonstandard_widths(self, width, rng):
        table = RoutingTable(width=width)
        for _ in range(300):
            length = rng.randint(0, width)
            value = rng.getrandbits(length) if length else 0
            table.add(Prefix(value, length, width), rng.randrange(1, 50))
        engine = ChiselLPM.build(table, ChiselConfig(width=width, seed=width))
        oracle = BinaryTrie.from_table(table)
        for _ in range(400):
            key = rng.getrandbits(width)
            assert engine.lookup(key) == oracle.lookup(key), (width, key)

    @pytest.mark.parametrize("k,mn", [(2, 2), (2, 3), (4, 4), (5, 5)])
    def test_bloomier_design_points(self, k, mn, rng):
        keys = rng.sample(range(1 << 32), 1500)
        items = {key: index % 1024 for index, key in enumerate(keys)}
        pbf = PartitionedBloomierFilter(
            capacity=1500, key_bits=32, value_bits=10,
            num_hashes=k, slots_per_key=mn, partitions=4,
            rng=random.Random(k * 10 + mn),
        )
        report = pbf.setup(items)
        for key, value in items.items():
            if key not in report.spilled:
                assert pbf.lookup(key) == value


class EBFStateMachine(RuleBasedStateMachine):
    """EBF insert/remove vs a dict: the Pruned-FHT repair must never let a
    present key become unfindable or a removed key resurface."""

    @initialize()
    def setup(self):
        self.rng = random.Random(7)
        self.ebf = ExtendedBloomFilter(
            capacity=512, key_bits=32, table_factor=6.0,
            rng=random.Random(8),
        )
        self.reference = {}

    @rule(value=st.integers(1, 999))
    def insert_new(self, value):
        key = self.rng.getrandbits(32)
        if key in self.reference or len(self.reference) >= 500:
            return
        self.ebf.insert(key, value)
        self.reference[key] = value

    @rule(value=st.integers(1, 999))
    def update_existing(self, value):
        if not self.reference:
            return
        key = self.rng.choice(list(self.reference))
        self.ebf.insert(key, value)
        self.reference[key] = value

    @rule()
    def remove_existing(self):
        if not self.reference:
            return
        key = self.rng.choice(list(self.reference))
        assert self.ebf.remove(key) == self.reference.pop(key)

    @rule()
    def remove_absent(self):
        key = self.rng.getrandbits(32)
        if key not in self.reference:
            assert self.ebf.remove(key) is None

    @invariant()
    def lookups_exact(self):
        for key in list(self.reference)[:8]:
            value, _probes = self.ebf.lookup(key)
            assert value == self.reference[key]
        probe = self.rng.getrandbits(32)
        if probe not in self.reference:
            value, _probes = self.ebf.lookup(probe)
            assert value is None

    @invariant()
    def size_consistent(self):
        assert len(self.ebf) == len(self.reference)


EBFStateMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=40, deadline=None
)
TestEBFStateMachine = EBFStateMachine.TestCase


class TreeBitmapStateMachine(RuleBasedStateMachine):
    """Interleaved insert/remove on the Tree Bitmap vs the binary trie."""

    @initialize()
    def setup(self):
        self.rng = random.Random(11)
        self.tree = TreeBitmap(32, stride=4)
        self.oracle = BinaryTrie(32)
        self.present = set()

    @rule(next_hop=st.integers(1, 200))
    def insert(self, next_hop):
        length = self.rng.choice((0, 4, 8, 15, 16, 23, 24, 32))
        value = self.rng.getrandbits(length) if length else 0
        prefix = Prefix(value, length, 32)
        self.tree.insert(prefix, next_hop)
        self.oracle.insert(prefix, next_hop)
        self.present.add(prefix)

    @rule()
    def remove(self):
        if not self.present:
            return
        prefix = self.rng.choice(list(self.present))
        assert self.tree.remove(prefix) == self.oracle.remove(prefix)
        self.present.discard(prefix)

    @invariant()
    def agree(self):
        for _ in range(6):
            key = self.rng.getrandbits(32)
            assert self.tree.lookup(key) == self.oracle.lookup(key)
        assert len(self.tree) == len(self.present)


TreeBitmapStateMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=40, deadline=None
)
TestTreeBitmapStateMachine = TreeBitmapStateMachine.TestCase
