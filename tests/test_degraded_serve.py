"""Degraded-mode serving: setup failures absorbed, trie fallback, recovery."""

import pytest

from repro.faults.inject import FaultInjector
from repro.router import ForwardingEngine
from repro.router.nexthop import NextHopInfo
from repro.serve import RecompilePolicy, RouterState, SnapshotRouter
from repro.workloads.synthetic import synthetic_table

TABLE_SIZE = 800


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry per module: fault/degrade runs record long
    lock holds and large counter values that must not leak into other
    modules' global-registry assertions (e.g. the serve p99 gate)."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)



@pytest.fixture
def rig():
    """A router on a fake clock, plus the injector driving it to failure."""
    table = synthetic_table(TABLE_SIZE, seed=4)
    fib = ForwardingEngine.from_table(table)
    clock = [100.0]
    router = SnapshotRouter(
        fib, RecompilePolicy(max_overlay=16, max_age=0.0),
        clock=lambda: clock[0], backoff_initial=2.0, backoff_max=16.0,
    )
    return router, fib, clock, FaultInjector(seed=4), table


def force_degrade(router, injector):
    """Drive the router into DEGRADED via an unabsorbable setup failure."""
    from repro.prefix.prefix import Prefix

    with injector.force_setup_failure(times=8) as delivered:
        for i in range(64):
            router.announce(f"198.18.{i}.0/24", "10.9.0.1", "eth7")
            if delivered[0]:
                break
    assert delivered[0] >= 1
    assert router.state is RouterState.DEGRADED
    return Prefix.from_string(f"198.18.{i}.0/24")


def test_single_setup_failure_is_absorbed_in_place(rig):
    router, fib, clock, injector, table = rig
    with injector.force_setup_failure(times=1) as delivered:
        for i in range(64):
            router.announce(f"198.18.{i}.0/24", "10.9.0.1", "eth7")
            if delivered[0]:
                break
    assert delivered[0] == 1
    assert router.state is RouterState.HEALTHY
    assert router.metrics.setup_failures_absorbed == 1
    # The absorbed announce still landed: the route resolves.
    answer = router.forward_batch([int(198) << 24 | 18 << 16 | i << 8 | 1])[0]
    assert answer == NextHopInfo("10.9.0.1", "eth7")


def test_unabsorbable_setup_failure_degrades_not_raises(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    assert router.metrics.degraded_entered == 1
    assert "injected" in router.metrics.last_degraded_reason


def test_degraded_router_keeps_answering_correctly(rig):
    router, fib, clock, injector, table = rig
    healthy_answers = router.forward_batch([k for k in range(0, 2 ** 32,
                                                            2 ** 25)])
    force_degrade(router, injector)
    keys = [k for k in range(0, 2 ** 32, 2 ** 25)]
    degraded_answers = router.forward_batch(keys)
    assert degraded_answers == healthy_answers
    assert router.metrics.degraded_lookups == len(keys)


def test_degraded_updates_flow_through_the_fallback(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    key = (203 << 24) | (7 << 16) | 9
    router.announce("203.7.0.0/16", "10.1.1.1", "eth1")
    assert router.forward_batch([key])[0] == NextHopInfo("10.1.1.1", "eth1")
    router.withdraw("203.7.0.0/16")
    answer = router.forward_batch([key])[0]
    assert answer != NextHopInfo("10.1.1.1", "eth1")
    assert router.metrics.degraded_updates >= 2


def test_degraded_refcounts_stay_balanced(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    info = NextHopInfo("10.2.2.2", "eth2")
    router.announce("203.9.0.0/16", info.gateway, info.interface)
    hop_id = fib.next_hops.id_for(info)
    assert fib.next_hops.refcount(hop_id) == 1
    router.announce("203.10.0.0/16", info.gateway, info.interface)
    assert fib.next_hops.refcount(hop_id) == 2
    router.withdraw("203.9.0.0/16")
    router.withdraw("203.10.0.0/16")
    assert fib.next_hops.id_for(info) is None


def test_recovery_waits_for_backoff_then_returns_healthy(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    assert router.maybe_recompile() is False
    assert router.state is RouterState.DEGRADED
    clock[0] += 2.0
    assert router.maybe_recompile() is True
    assert router.state is RouterState.HEALTHY
    assert router.metrics.recoveries == 1
    router.verify_sample(range(0, 2 ** 32, 2 ** 24))


def test_recovered_router_serves_routes_announced_while_degraded(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    router.announce("203.11.0.0/16", "10.3.3.3", "eth3")
    clock[0] += 2.0
    assert router.maybe_recompile() is True
    key = (203 << 24) | (11 << 16) | 42
    assert router.forward_batch([key])[0] == NextHopInfo("10.3.3.3", "eth3")


def test_failed_recovery_backs_off_exponentially(rig):
    router, fib, clock, injector, table = rig
    force_degrade(router, injector)
    with injector.force_setup_failure(times=100):
        clock[0] += 2.0
        assert router.maybe_recompile() is False
        assert router.metrics.recovery_failures == 1
        # Backoff doubled: 2s is no longer enough.
        clock[0] += 2.0
        assert router.maybe_recompile() is False
        assert router.metrics.recovery_failures == 1
        clock[0] += 2.0
        assert router.maybe_recompile() is False
        assert router.metrics.recovery_failures == 2
    clock[0] += 8.0
    assert router.maybe_recompile() is True
    assert router.state is RouterState.HEALTHY


def test_scrub_uncorrectable_degrades_the_router(rig):
    router, fib, clock, injector, table = rig
    assert injector.corrupt_shadow_pointer(fib.engine) is not None
    report = router.scrub()
    assert report is not None and not report.healthy
    assert router.state is RouterState.DEGRADED
    assert "pointer" in router.metrics.last_degraded_reason
    # And it comes back: the trie rebuild does not inherit the corruption.
    clock[0] += 2.0
    assert router.maybe_recompile() is True
    assert router.scrub().clean


def test_scrub_repairs_keep_router_healthy(rig):
    router, fib, clock, injector, table = rig
    for _ in range(10):
        assert injector.flip_table_bit(fib.engine) is not None
    report = router.scrub()
    assert report.total_repaired >= 1
    assert router.state is RouterState.HEALTHY
    router.verify_sample(range(0, 2 ** 32, 2 ** 24))


def test_spillover_overflow_during_churn_is_contained(rig):
    router, fib, clock, injector, table = rig
    from repro.workloads.traces import synthesize_trace
    from repro.core.updates import ANNOUNCE

    trace = synthesize_trace(table, 200, seed=5)
    with injector.force_spillover_overflow(fib.engine):
        for op in trace:
            if op.op == ANNOUNCE:
                router.announce(op.prefix, f"10.8.{op.next_hop % 256}.1",
                                f"eth{op.next_hop % 8}")
            else:
                router.withdraw(op.prefix)
    # Contained: whatever happened, no exception escaped and the router
    # is either still healthy or visibly degraded — and recoverable.
    for _ in range(8):
        if router.state is RouterState.HEALTHY:
            break
        clock[0] += router._backoff
        router.maybe_recompile()
    assert router.state is RouterState.HEALTHY


def test_state_and_metrics_are_exposed(rig):
    router, fib, clock, injector, table = rig
    assert router.metrics_dict()["state"] == "healthy"
    force_degrade(router, injector)
    payload = router.metrics_dict()
    assert payload["state"] == "degraded"
    assert payload["degraded_entered"] == 1
