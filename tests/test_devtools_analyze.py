"""chisel-repro analyze: lock discipline, publish protocol, dtype flow.

Three kinds of coverage:

* unit tests of the annotation parsers and the lock-context machinery
  (nested ``with``, early returns, acquire/release, ``@contextmanager``
  lock helpers, inter-procedural entry contexts);
* per-pass positive/negative fixtures for every ANZ code;
* the two teeth anchors — frozen copies of the PR 2 rank-mask overflow
  and the PR 5 scrub-mid-export race under tests/fixtures/analyze/ —
  plus the tree-clean gate CI enforces.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.analyze import (
    ANALYSIS_CATALOG,
    AnalysisEngine,
    analysis_catalog,
)
from repro.devtools.analyze.model import (
    parse_guard_comments,
    parse_rcu_comments,
    parse_scope_markers,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analyze"


@pytest.fixture
def engine():
    return AnalysisEngine()


def codes(engine, source, path="pkg/module.py"):
    return [v.code for v in engine.analyze_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# annotation parsing
# ---------------------------------------------------------------------------

def test_guarded_by_comments_parse_line_numbers():
    source = textwrap.dedent("""\
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0  # guarded-by: _lock
                self._gauge = 0  # guarded-by: single-writer
                self._other = 0  # guarded-by: external
        """)
    assert parse_guard_comments(source) == {
        4: "_lock", 5: "single-writer", 6: "external",
    }


def test_rcu_pointer_comments_parse():
    source = "self._snapshot = None  # rcu-pointer: _lock (swapped whole)\n"
    assert parse_rcu_comments(source) == {1: "_lock"}


def test_scope_marker_parses_only_in_header():
    marked = "# chisel-analyze-scope: dtype\nx = 1\n"
    assert parse_scope_markers(marked) == frozenset({"dtype"})
    late = ("\n" * 20) + "# chisel-analyze-scope: dtype\n"
    assert parse_scope_markers(late) == frozenset()


def test_catalog_is_sorted_and_complete():
    assert list(analysis_catalog()) == sorted(ANALYSIS_CATALOG)
    assert {code[:6] for code in ANALYSIS_CATALOG} <= {
        "ANZ101", "ANZ102", "ANZ201", "ANZ202", "ANZ203", "ANZ204",
        "ANZ301", "ANZ302", "ANZ303", "ANZ304",
    }


# ---------------------------------------------------------------------------
# ANZ101 — lock discipline
# ---------------------------------------------------------------------------

def test_anz101_flags_unguarded_access(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                self._count += 1
    """
    assert codes(engine, source) == ["ANZ101"]


def test_anz101_allows_with_lock(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._count += 1
    """
    assert codes(engine, source) == []


def test_anz101_allows_acquire_release(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                self._lock.acquire()
                try:
                    self._count += 1
                finally:
                    self._lock.release()
    """
    assert codes(engine, source) == []


def test_anz101_flags_access_after_early_with_exit(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._count += 1
                return self._count
    """
    assert codes(engine, source) == ["ANZ101"]


def test_anz101_entry_context_through_private_helper(engine):
    """A private helper only ever called under the lock inherits it."""
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self._count += 1
    """
    assert codes(engine, source) == []


def test_anz101_helper_also_called_unlocked_is_flagged(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def bump_unsafe(self):
                self._bump_locked()

            def _bump_locked(self):
                self._count += 1
    """
    assert codes(engine, source) == ["ANZ101"]


def test_anz101_contextmanager_lock_helper_resolves(engine):
    """``with self._held():`` counts as holding the lock the cm takes."""
    source = """\
        import threading
        from contextlib import contextmanager

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            @contextmanager
            def _held(self):
                with self._lock:
                    yield

            def bump(self):
                with self._held():
                    self._count += 1
    """
    assert codes(engine, source) == []


def test_anz101_public_methods_assume_no_lock(engine):
    source = """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock

            def peek(self):
                return self._count
    """
    assert codes(engine, source) == ["ANZ101"]


def test_anz101_single_writer_free_within_class(engine):
    source = """\
        class Coordinator:
            def __init__(self):
                self._generation = 0  # guarded-by: single-writer

            def publish(self):
                self._generation += 1
    """
    assert codes(engine, source) == []


def test_anz101_single_writer_cross_object_flagged(engine):
    source = """\
        class Coordinator:
            def __init__(self):
                self._generation = 0  # guarded-by: single-writer

        class Meddler:
            def __init__(self, coordinator: Coordinator):
                self.coordinator = coordinator

            def poke(self):
                self.coordinator._generation += 1
    """
    assert codes(engine, source) == ["ANZ101"]


def test_anz101_external_needs_some_lock_cross_object(engine):
    source = """\
        import threading

        class Engine:
            def __init__(self):
                self.stats = 0  # guarded-by: external

        class Router:
            def __init__(self, engine: Engine):
                self._lock = threading.Lock()
                self.engine = engine

            def bad(self):
                return self.engine.stats

            def good(self):
                with self._lock:
                    return self.engine.stats
    """
    assert codes(engine, source) == ["ANZ101"]


# ---------------------------------------------------------------------------
# ANZ102 — lock ordering
# ---------------------------------------------------------------------------

def test_anz102_flags_inverted_order(engine):
    source = """\
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """
    assert codes(engine, source) == ["ANZ102"]


def test_anz102_consistent_order_clean(engine):
    source = """\
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._a:
                    with self._b:
                        pass
    """
    assert codes(engine, source) == []


# ---------------------------------------------------------------------------
# ANZ201 — seqlock protocol
# ---------------------------------------------------------------------------

SEQLOCK_PREAMBLE = """\
    import numpy as np

    _SEQUENCE = 2
    _GENERATION = 1
    _PAYLOAD = 5

    class Block:
        def __init__(self, shm):
            self._shm = shm
            self._words = np.frombuffer(shm.buf, dtype=np.uint64, count=8)

"""


def test_anz201_accepts_bracketed_publish(engine):
    source = SEQLOCK_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def publish(self, generation):
            self._words[_SEQUENCE] += np.uint64(1)
            self._words[_PAYLOAD] = np.uint64(7)
            self._words[_GENERATION] = generation
            self._words[_SEQUENCE] += np.uint64(1)
    """), "        ")
    assert codes(engine, source) == []


def test_anz201_flags_generation_before_payload(engine):
    source = SEQLOCK_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def publish(self, generation):
            self._words[_SEQUENCE] += np.uint64(1)
            self._words[_GENERATION] = generation
            self._words[_PAYLOAD] = np.uint64(7)
            self._words[_SEQUENCE] += np.uint64(1)
    """), "        ")
    assert codes(engine, source) == ["ANZ201"]


def test_anz201_flags_store_outside_window(engine):
    source = SEQLOCK_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def publish(self, generation):
            self._words[_SEQUENCE] += np.uint64(1)
            self._words[_GENERATION] = generation
            self._words[_SEQUENCE] += np.uint64(1)

        def sneak(self, generation):
            self._words[_GENERATION] = generation
    """), "        ")
    assert codes(engine, source) == ["ANZ201"]


# ---------------------------------------------------------------------------
# ANZ202 / ANZ203 — RCU pointer and published views
# ---------------------------------------------------------------------------

RCU_PREAMBLE = """\
    import threading

    class Router:
        def __init__(self):
            self._lock = threading.Lock()
            self._snapshot = None  # rcu-pointer: _lock

"""


def test_anz202_accepts_single_assignment_swap(engine):
    source = RCU_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def swap(self, fresh):
            with self._lock:
                self._snapshot = fresh
    """), "        ")
    assert codes(engine, source) == []


def test_anz202_flags_in_place_mutation(engine):
    source = RCU_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def patch(self, plan):
            with self._lock:
                self._snapshot.plans = plan
    """), "        ")
    assert codes(engine, source) == ["ANZ202"]


def test_anz202_flags_non_trivial_swap(engine):
    source = RCU_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def swap(self, fresh):
            with self._lock:
                self._snapshot = fresh.compile()
    """), "        ")
    assert codes(engine, source) == ["ANZ202"]


def test_anz202_flags_foreign_assignment(engine):
    source = RCU_PREAMBLE + textwrap.indent(textwrap.dedent("""\
        def swap(self, fresh):
            with self._lock:
                self._snapshot = fresh
    """), "        ") + textwrap.indent(textwrap.dedent("""\

        class Meddler:
            def __init__(self, router: Router):
                self.router = router

            def clobber(self):
                with self.router._lock:
                    self.router._snapshot = None
    """), "    ")
    assert codes(engine, source) == ["ANZ202"]


def test_anz203_flags_mutating_published_view(engine):
    source = """\
        class Worker:
            def serve(self, segment):
                lookup = segment.to_lookup()
                lookup.plans[0] = None
    """
    assert codes(engine, source) == ["ANZ203"]


def test_anz203_allows_read_and_writeable_seal(engine):
    source = """\
        class Worker:
            def serve(self, segment):
                lookup = segment.to_lookup()
                lookup.flags.writeable = False
                return lookup.plans
    """
    assert codes(engine, source) == []


# ---------------------------------------------------------------------------
# ANZ204 — export/install quiescence fence
# ---------------------------------------------------------------------------

def test_anz204_flags_unfenced_install(engine):
    source = """\
        class Publisher:
            def publish(self, snapshot):
                segment = SharedSnapshot.export(snapshot, [], 1)
                self._install(segment)
    """
    assert codes(engine, source) == ["ANZ204"]


def test_anz204_accepts_words_written_recheck(engine):
    source = """\
        class Publisher:
            def publish(self, snapshot, engine, before):
                segment = SharedSnapshot.export(snapshot, [], 1)
                if engine.words_written() != before:
                    return None
                self._install(segment)
    """
    assert codes(engine, source) == []


# ---------------------------------------------------------------------------
# dtype flow (ANZ301–ANZ304); scoped in via the file marker
# ---------------------------------------------------------------------------

def dtype_codes(engine, body):
    source = "# chisel-analyze-scope: dtype\nimport numpy as np\n\n" + \
        textwrap.dedent(body)
    return [v.code for v in engine.analyze_source(source, "pkg/module.py")]


def test_anz301_flags_width_reaching_shift(engine):
    assert dtype_codes(engine, """\
        def mask(keys):
            expansion = keys & np.uint64(63)
            return (np.uint64(1) << (expansion + np.uint64(1))) - np.uint64(1)
    """) == ["ANZ301"]


def test_anz301_clean_when_bound_stays_below_width(engine):
    assert dtype_codes(engine, """\
        def mask(keys):
            expansion = keys & np.uint64(63)
            return np.uint64(1) << expansion
    """) == []


def test_anz301_two_step_mask_idiom_is_clean(engine):
    assert dtype_codes(engine, """\
        def mask(keys):
            expansion = keys & np.uint64(63)
            bit = np.uint64(1) << expansion
            return bit | (bit - np.uint64(1))
    """) == []


def test_anz302_flags_unbounded_uint64_product(engine):
    assert dtype_codes(engine, """\
        def mix(words, keys):
            return words * np.uint64(0x9E3779B97F4A7C15)
    """) == ["ANZ302"]


def test_anz302_clean_when_product_provably_fits(engine):
    assert dtype_codes(engine, """\
        def scale(keys):
            small = keys & np.uint64(0xFFFF)
            return small * np.uint64(3)
    """) == []


def test_anz303_flags_mixed_sign_promotion(engine):
    assert dtype_codes(engine, """\
        def adjust(count):
            return np.uint64(count) + np.int64(-1)
    """) == ["ANZ303"]


def test_anz304_flags_frombuffer_without_count(engine):
    assert dtype_codes(engine, """\
        def attach(shm):
            return np.frombuffer(shm.buf, dtype=np.uint64)
    """) == ["ANZ304"]


def test_anz304_accepts_explicit_count(engine):
    assert dtype_codes(engine, """\
        def attach(shm):
            return np.frombuffer(shm.buf, dtype=np.uint64, count=8)
    """) == []


def test_dtype_pass_stays_out_of_unscoped_modules(engine):
    source = textwrap.dedent("""\
        import numpy as np

        def mix(words):
            return words * np.uint64(0x9E3779B97F4A7C15)
    """)
    assert engine.analyze_source(source, "pkg/unrelated.py") == []


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------

def test_noqa_suppresses_a_finding(engine):
    assert dtype_codes(engine, """\
        def mix(words):
            return words * np.uint64(0x9E3779B97F4A7C15)  # chisel: noqa[ANZ302]
    """) == []


def test_noqa_with_other_code_does_not_suppress(engine):
    assert dtype_codes(engine, """\
        def mix(words):
            return words * np.uint64(0x9E3779B97F4A7C15)  # chisel: noqa[ANZ301]
    """) == ["ANZ302"]


# ---------------------------------------------------------------------------
# teeth: the PR 2 and PR 5 regression anchors, and the tree-clean gate
# ---------------------------------------------------------------------------

def test_pr2_fixture_yields_exactly_the_rank_mask_overflow(engine):
    violations = engine.analyze_paths(
        [str(FIXTURES / "pr2_rank_mask_overflow.py")])
    assert [v.code for v in violations] == ["ANZ301"]


def test_pr5_fixture_yields_exactly_the_unfenced_install(engine):
    violations = engine.analyze_paths(
        [str(FIXTURES / "pr5_scrub_mid_export.py")])
    assert [v.code for v in violations] == ["ANZ204"]


def test_source_tree_has_zero_unsuppressed_findings(engine):
    violations = engine.analyze_paths([str(SRC_ROOT)])
    assert violations == [], "\n".join(v.format() for v in violations)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
    )


def test_cli_analyze_clean_tree_exits_zero():
    proc = run_cli("analyze", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no violations" in proc.stdout


def test_cli_analyze_json_reports_fixture_finding():
    proc = run_cli(
        "analyze", "--json",
        str(FIXTURES / "pr2_rank_mask_overflow.py"),
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["violations"][0]["code"] == "ANZ301"
    assert "ANZ301" in payload["catalog"]


# ---------------------------------------------------------------------------
# the five real findings this PR fixed stay fixed (fail-before anchors)
# ---------------------------------------------------------------------------

def test_fixed_metrics_dict_reads_gauges_under_lock(engine):
    """The pre-fix shape — gauge reads outside the lock — is flagged."""
    source = """\
        import threading

        class Router:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = 0  # guarded-by: _lock
                self._overlay_size = 0  # guarded-by: _lock

            def metrics_dict(self):
                return {
                    "state": self._state,
                    "overlay": self._overlay_size,
                }

            def transition(self):
                with self._lock:
                    self._state = 1
                    self._overlay_size = 2
    """
    assert codes(engine, source) == ["ANZ101", "ANZ101"]


def test_fixed_frombuffer_views_are_bounded():
    """Both live ControlBlock views carry an explicit count."""
    import inspect

    from repro.shard import control

    source = inspect.getsource(control)
    assert source.count("np.frombuffer") == 3
    assert source.count("count=") >= 3


def test_fixed_control_block_header_view_is_header_sized():
    from repro.shard.control import _NAME_OFFSET, ControlBlock

    block = ControlBlock.create(workers=2)
    try:
        assert len(block._words) == _NAME_OFFSET // 8
    finally:
        block.close()


def test_fixed_worker_runtime_returns_lookup():
    """ensure_current hands back the lookup; no Optional dereference."""
    import inspect

    from repro.shard.worker import _WorkerRuntime, worker_main

    signature = inspect.signature(_WorkerRuntime.ensure_current)
    assert "SharedBatchLookup" in str(signature.return_annotation)
    assert "runtime.lookup.lookup_batch" not in inspect.getsource(worker_main)


def test_fixed_coordinator_guards_optional_process():
    import inspect

    from repro.shard.coordinator import ShardCoordinator

    source = inspect.getsource(ShardCoordinator._collect_batch) \
        if hasattr(ShardCoordinator, "_collect_batch") \
        else inspect.getsource(ShardCoordinator)
    assert "process is None or not process.is_alive()" in source
