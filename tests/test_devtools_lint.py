"""chisel-check lint engine: per-rule positive/negative/noqa fixtures."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    REGISTRY,
    LintEngine,
    format_json,
    format_text,
    parse_noqa,
    rule_catalog,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture
def engine():
    return LintEngine()


def codes(engine, source, path="pkg/module.py"):
    return [v.code for v in engine.lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# CHZ001 — unseeded / module-global randomness
# ---------------------------------------------------------------------------

def test_chz001_flags_module_global_random(engine):
    assert codes(engine, """\
        import random

        def pick(items):
            return items[random.randint(0, len(items) - 1)]
        """) == ["CHZ001"]


def test_chz001_flags_unseeded_random_instance(engine):
    assert codes(engine, """\
        import random

        rng = random.Random()
        """) == ["CHZ001"]


def test_chz001_flags_from_import_of_global_funcs(engine):
    assert codes(engine, """\
        from random import choice, shuffle
        """) == ["CHZ001"]


def test_chz001_allows_threaded_seeded_rng(engine):
    assert codes(engine, """\
        import random

        def build(seed):
            rng = random.Random(seed)
            return rng.random() + rng.getrandbits(8)
        """) == []


def test_chz001_noqa_suppresses(engine):
    assert codes(engine, """\
        import random

        def jitter():
            return random.random()  # chisel: noqa[CHZ001]
        """) == []


# ---------------------------------------------------------------------------
# CHZ002 — mutable default arguments
# ---------------------------------------------------------------------------

def test_chz002_flags_mutable_defaults(engine):
    assert codes(engine, """\
        def merge(base, extra=[], *, index={}):
            return base
        """) == ["CHZ002", "CHZ002"]


def test_chz002_flags_constructor_defaults(engine):
    assert codes(engine, """\
        def group(items, buckets=dict()):
            return buckets
        """) == ["CHZ002"]


def test_chz002_allows_none_default(engine):
    assert codes(engine, """\
        def merge(base, extra=None, flag=0, name="x"):
            extra = extra or []
            return base
        """) == []


def test_chz002_noqa_suppresses(engine):
    assert codes(engine, """\
        def merge(base, extra=[]):  # chisel: noqa[CHZ002]
            return base
        """) == []


# ---------------------------------------------------------------------------
# CHZ003 — float arithmetic in bit accounting
# ---------------------------------------------------------------------------

def test_chz003_flags_log2_in_bit_function(engine):
    assert codes(engine, """\
        import math

        def pointer_bits(count):
            return max(1, math.ceil(math.log2(count)))
        """) == ["CHZ003"]


def test_chz003_flags_division_and_float_literal(engine):
    found = codes(engine, """\
        def storage_bits(entries) -> int:
            return int(entries * 1.5 / 8)
        """)
    assert found.count("CHZ003") >= 2


def test_chz003_scopes_int_functions_in_sizing_module(engine):
    source = """\
        def headroom(entries) -> int:
            return int(entries / 8)
        """
    assert "CHZ003" in codes(engine, source, path="repro/core/sizing.py")
    # Same function outside a bit-accounting module: not scoped.
    assert codes(engine, source, path="repro/workloads/traces.py") == []


def test_chz003_allows_float_returning_helpers(engine):
    assert codes(engine, """\
        def total_mbits(self) -> float:
            return self.total_bits / 1_000_000

        def bytes_per_prefix(self, n) -> float:
            return self.total_bits / 8 / n
        """) == []


def test_chz003_allows_exact_integer_bit_math(engine):
    assert codes(engine, """\
        def pointer_bits(count: int) -> int:
            return max(1, (count - 1).bit_length()) if count > 1 else 1

        def storage_bits(self) -> int:
            return self.depth * self.width // 1
        """) == []


def test_chz003_noqa_suppresses(engine):
    assert codes(engine, """\
        def sample_bits(n) -> int:
            return int(n / 2)  # chisel: noqa[CHZ003]
        """) == []


# ---------------------------------------------------------------------------
# CHZ004 — assert as validation
# ---------------------------------------------------------------------------

def test_chz004_flags_assert(engine):
    assert codes(engine, """\
        def insert(self, key):
            assert key >= 0, "keys are unsigned"
            return key
        """) == ["CHZ004"]


def test_chz004_allows_raise(engine):
    assert codes(engine, """\
        def insert(self, key):
            if key < 0:
                raise ValueError("keys are unsigned")
            return key
        """) == []


def test_chz004_noqa_suppresses(engine):
    assert codes(engine, """\
        def insert(self, key):
            assert key >= 0  # chisel: noqa[CHZ004]
            return key
        """) == []


# ---------------------------------------------------------------------------
# CHZ005 — O(n) scans in hot lookup paths
# ---------------------------------------------------------------------------

HOT_PATH = "repro/core/subcell.py"


def test_chz005_flags_scan_in_lookup(engine):
    assert codes(engine, """\
        class SubCell:
            __slots__ = ()

            def lookup(self, key):
                for value in self.filter_table:
                    if value == key:
                        return value
                return None
        """, path=HOT_PATH) == ["CHZ005"]

    assert codes(engine, """\
        class SubCell:
            __slots__ = ()

            def lookup(self, key):
                for index, value in enumerate(self.filter_table):
                    if value == key:
                        return index
                return None
        """, path=HOT_PATH) == ["CHZ005"]


def test_chz005_flags_comprehension_and_range_scans(engine):
    assert codes(engine, """\
        class SubCell:
            __slots__ = ()

            def lookup(self, key):
                hits = [v for v, b in self.buckets.items() if v == key]
                for slot in range(self.capacity):
                    pass
                return hits
        """, path=HOT_PATH) == ["CHZ005", "CHZ005"]


def test_chz005_allows_scans_outside_hot_functions(engine):
    assert codes(engine, """\
        class SubCell:
            __slots__ = ()

            def rebuild(self):
                for value in self.filter_table:
                    pass

            def lookup(self, key):
                for cell in self.subcells:
                    pass
        """, path=HOT_PATH) == []


def test_chz005_only_applies_to_hot_modules(engine):
    assert codes(engine, """\
        class Report:
            def lookup(self, key):
                for value in self.filter_table:
                    pass
        """, path="repro/analysis/report.py") == []


def test_chz005_noqa_suppresses(engine):
    assert codes(engine, """\
        class SubCell:
            __slots__ = ()

            def lookup(self, key):
                for value in self.filter_table:  # chisel: noqa[CHZ005]
                    pass
        """, path=HOT_PATH) == []


# ---------------------------------------------------------------------------
# CHZ006 — missing __slots__ on hot classes
# ---------------------------------------------------------------------------

SLOTS_PATH = "repro/core/bitvector.py"


def test_chz006_flags_missing_slots(engine):
    assert codes(engine, """\
        class Bucket:
            def __init__(self):
                self.bits = 0
        """, path=SLOTS_PATH) == ["CHZ006"]


def test_chz006_allows_slots_dataclass_and_exceptions(engine):
    assert codes(engine, """\
        from dataclasses import dataclass
        from enum import Enum

        class Bucket:
            __slots__ = ("bits",)

            def __init__(self):
                self.bits = 0

        @dataclass
        class Stats:
            hits: int = 0

        class BucketError(RuntimeError):
            pass

        class Kind(Enum):
            A = 1
        """, path=SLOTS_PATH) == []


def test_chz006_only_applies_to_hot_modules(engine):
    assert codes(engine, """\
        class Report:
            def __init__(self):
                self.rows = []
        """, path="repro/analysis/report.py") == []


def test_chz006_noqa_suppresses(engine):
    assert codes(engine, """\
        class Bucket:  # chisel: noqa[CHZ006]
            def __init__(self):
                self.bits = 0
        """, path=SLOTS_PATH) == []


# ---------------------------------------------------------------------------
# CHZ007 — ServeMetrics constructed outside repro.serve
# ---------------------------------------------------------------------------

def test_chz007_flags_construction_outside_serve(engine):
    assert codes(engine, """\
        from repro.serve.metrics import ServeMetrics

        def snapshot_stats():
            return ServeMetrics()
        """, path="repro/analysis/report.py") == ["CHZ007"]


def test_chz007_allows_construction_inside_serve(engine):
    source = """\
        class SnapshotRouter:
            def __init__(self):
                self.metrics = ServeMetrics()
        """
    assert codes(engine, source, path="repro/serve/snapshot.py") == []
    assert codes(engine, source, path="serve/snapshot.py") == []


def test_chz007_allows_reads_without_construction(engine):
    assert codes(engine, """\
        def report(router):
            return router.metrics.snapshots_compiled
        """, path="repro/analysis/report.py") == []


def test_chz007_noqa_suppresses(engine):
    assert codes(engine, """\
        metrics = ServeMetrics()  # chisel: noqa[CHZ007]
        """, path="repro/analysis/report.py") == []


# ---------------------------------------------------------------------------
# CHZ008 — broad except: pass inside repro
# ---------------------------------------------------------------------------

def test_chz008_flags_except_exception_pass(engine):
    assert codes(engine, """\
        def drain(queue):
            try:
                queue.pop()
            except Exception:
                pass
        """, path="repro/serve/snapshot.py") == ["CHZ008"]


def test_chz008_flags_bare_except_and_broad_tuple(engine):
    assert codes(engine, """\
        def drain(queue):
            try:
                queue.pop()
            except:
                pass
            try:
                queue.pop()
            except (ValueError, BaseException):
                pass
        """, path="repro/core/chisel.py") == ["CHZ008", "CHZ008"]


def test_chz008_allows_narrow_types_and_handled_bodies(engine):
    assert codes(engine, """\
        def drain(queue):
            try:
                queue.pop()
            except IndexError:
                pass
            try:
                queue.pop()
            except Exception as error:
                record(error)
        """, path="repro/core/chisel.py") == []


def test_chz008_scoped_to_repro_source(engine):
    assert codes(engine, """\
        try:
            probe()
        except Exception:
            pass
        """, path="examples/demo.py") == []


def test_chz008_noqa_suppresses(engine):
    assert codes(engine, """\
        try:
            probe()
        except Exception:  # chisel: noqa[CHZ008]
            pass
        """, path="repro/core/chisel.py") == []


# ---------------------------------------------------------------------------
# CHZ009 — wall-clock time.time() used for durations inside repro
# ---------------------------------------------------------------------------

def test_chz009_flags_time_time_call(engine):
    assert codes(engine, """\
        import time

        def age(compiled_at):
            return time.time() - compiled_at
        """, path="repro/serve/snapshot.py") == ["CHZ009"]


def test_chz009_flags_from_time_import_time(engine):
    assert codes(engine, """\
        from time import time
        """, path="repro/shard/coordinator.py") == ["CHZ009"]


def test_chz009_allows_monotonic_and_perf_counter(engine):
    assert codes(engine, """\
        import time

        def measure():
            started = time.perf_counter()
            deadline = time.monotonic() + 5.0
            return started, deadline
        """, path="repro/serve/snapshot.py") == []


def test_chz009_scoped_to_repro_source(engine):
    assert codes(engine, """\
        import time

        def now():
            return time.time()
        """, path="examples/demo.py") == []


def test_chz009_noqa_suppresses(engine):
    assert codes(engine, """\
        import time

        def wall_clock_stamp():
            return time.time()  # chisel: noqa[CHZ009]
        """, path="repro/obs/registry.py") == []


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------

def test_blanket_noqa_suppresses_all_codes(engine):
    assert codes(engine, """\
        def merge(base, extra=[]):  # chisel: noqa
            return base
        """) == []


def test_parse_noqa_extracts_codes():
    pragmas = parse_noqa(
        "x = 1  # chisel: noqa[CHZ001, CHZ004]\ny = 2\nz = 3  # chisel: noqa\n"
    )
    assert pragmas == {1: frozenset({"CHZ001", "CHZ004"}), 3: None}


def test_syntax_error_reported_as_chz000(engine):
    found = engine.lint_source("def broken(:\n", "bad.py")
    assert [v.code for v in found] == ["CHZ000"]


def test_lint_paths_walks_directories(engine, tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "ok.py").write_text("VALUE = 1\n")
    (package / "bad.py").write_text("def f(xs=[]):\n    return xs\n")
    (package / "notes.txt").write_text("not python")
    found = engine.lint_paths([str(tmp_path)])
    assert [v.code for v in found] == ["CHZ002"]
    assert found[0].path.endswith("bad.py")


def test_reporters_text_and_json(engine):
    found = engine.lint_source("def f(xs=[]):\n    return xs\n", "mod.py")
    text = format_text(found)
    assert "mod.py:1" in text and "CHZ002" in text
    payload = json.loads(format_json(found))
    assert payload["count"] == 1
    assert payload["violations"][0]["code"] == "CHZ002"
    assert format_text([]) == "chisel-check: no violations"


def test_rule_catalog_covers_all_registered_codes():
    catalog = dict(rule_catalog())
    assert set(catalog) == set(REGISTRY)
    assert {"CHZ001", "CHZ002", "CHZ003", "CHZ004", "CHZ005", "CHZ006",
            "CHZ007", "CHZ008"} <= set(catalog)
    assert all(summary for summary in catalog.values())


# ---------------------------------------------------------------------------
# the acceptance gate: the shipped tree lints clean
# ---------------------------------------------------------------------------

def test_shipped_source_tree_is_lint_clean(engine):
    violations = engine.lint_paths([str(SRC_ROOT)])
    assert violations == [], format_text(violations)


def test_cli_check_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    assert main(["check", "--lint", str(SRC_ROOT)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    assert main(["check", "--lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CHZ002" in out


def test_cli_check_lint_json(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.seed(1)\n")
    assert main(["check", "--lint", "--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["lint"]["count"] == 1
    assert payload["lint"]["violations"][0]["code"] == "CHZ001"
