"""Unit tests for d-random / d-left hashing (§2 background schemes)."""

import random

import pytest

from repro.baselines import DLeftHashTable, DRandomHashTable


class TestDRandom:
    def test_insert_lookup(self):
        table = DRandomHashTable(64, 2, 32, random.Random(0))
        table.insert(123, 7)
        value, probes = table.lookup(123)
        assert value == 7
        assert probes >= 1

    def test_lookup_missing(self):
        table = DRandomHashTable(64, 2, 32, random.Random(0))
        assert table.lookup(999)[0] is None

    def test_balancing_beats_single_choice(self):
        """d=2 must produce a visibly smaller max bucket than d=1 at the
        same load — the power of two choices."""
        rng = random.Random(1)
        keys = rng.sample(range(1 << 32), 2000)
        single = DRandomHashTable(2000, 1, 32, random.Random(2))
        double = DRandomHashTable(2000, 2, 32, random.Random(3))
        for key in keys:
            single.insert(key, 0)
            double.insert(key, 0)
        assert double.max_bucket() < single.max_bucket()

    def test_collisions_still_occur(self):
        """Even with d choices collisions are reduced, not eliminated (§2)."""
        rng = random.Random(4)
        table = DRandomHashTable(500, 2, 32, random.Random(5))
        for key in rng.sample(range(1 << 32), 500):
            table.insert(key, 0)
        assert table.max_bucket() >= 2

    def test_occupancy_histogram_sums(self):
        table = DRandomHashTable(100, 2, 32, random.Random(6))
        for key in range(50):
            table.insert(key, key)
        histogram = table.occupancy_histogram()
        assert sum(histogram.values()) == 100
        assert sum(size * count for size, count in histogram.items()) == 50

    def test_rejects_zero_choices(self):
        with pytest.raises(ValueError):
            DRandomHashTable(8, 0, 32, random.Random(0))


class TestDLeft:
    def test_insert_lookup(self):
        table = DLeftHashTable(64, 3, 32, random.Random(7))
        table.insert(55, 9)
        assert table.lookup(55)[0] == 9

    def test_size(self):
        table = DLeftHashTable(64, 3, 32, random.Random(8))
        for key in range(40):
            table.insert(key, key)
        assert len(table) == 40

    def test_leftmost_tie_break(self):
        """With all buckets empty, the first key must land in sub-table 0."""
        table = DLeftHashTable(16, 3, 32, random.Random(9))
        table.insert(1, 1)
        assert sum(len(b) for b in table._tables[0]) == 1

    def test_balanced_load(self):
        rng = random.Random(10)
        table = DLeftHashTable(700, 3, 32, random.Random(11))
        for key in rng.sample(range(1 << 32), 2000):
            table.insert(key, 0)
        assert table.max_bucket() <= 4  # O(log log n) in practice

    def test_probe_bound(self):
        """A lookup examines at most d buckets' worth of entries."""
        table = DLeftHashTable(64, 3, 32, random.Random(12))
        for key in range(100):
            table.insert(key, key)
        _value, probes = table.lookup(10**9)
        assert probes <= 3 * (table.max_bucket() + 1)
