"""Unit tests for the Extended Bloom Filter baseline (Song et al. 2005)."""

import random

import pytest

from repro.baselines import ExtendedBloomFilter
from repro.baselines.ebf import EBFCollisionStats


def build(num_keys=2000, table_factor=12.0, seed=0):
    rng = random.Random(seed)
    keys = rng.sample(range(1 << 32), num_keys)
    items = {key: index for index, key in enumerate(keys)}
    ebf = ExtendedBloomFilter(
        capacity=num_keys, key_bits=32, table_factor=table_factor,
        rng=random.Random(seed + 1),
    )
    ebf.build(items)
    return ebf, items


class TestBuildAndLookup:
    def test_all_members_found(self):
        ebf, items = build()
        for key, value in items.items():
            found, probes = ebf.lookup(key)
            assert found == value
            assert probes >= 1

    def test_nonmembers_mostly_rejected_onchip(self):
        """The counting Bloom filter should short-circuit most misses."""
        ebf, items = build(num_keys=1000, seed=2)
        rng = random.Random(3)
        zero_probe_misses = 0
        total = 0
        for _ in range(1000):
            probe = rng.getrandbits(32)
            if probe in items:
                continue
            total += 1
            value, probes = ebf.lookup(probe)
            assert value is None
            if probes == 0:
                zero_probe_misses += 1
        assert zero_probe_misses / total > 0.9

    def test_overfull_build_rejected(self):
        ebf = ExtendedBloomFilter(capacity=3, key_bits=32)
        with pytest.raises(ValueError):
            ebf.build({k: k for k in range(5)})

    def test_len(self):
        ebf, items = build(num_keys=500)
        assert len(ebf) == 500


class TestCollisions:
    def test_low_collision_rate_at_12n(self):
        """12n buckets: collisions should be very rare (paper: ~1 in 2.5M;
        at our scale, simply 'none or almost none')."""
        ebf, _items = build(num_keys=4000, table_factor=12.0, seed=4)
        stats = ebf.collision_stats()
        assert stats.collision_rate < 0.005

    def test_collisions_grow_as_table_shrinks(self):
        """The paper's EBF-vs-poor-EBF storage/collision trade-off."""
        big, _i1 = build(num_keys=4000, table_factor=12.0, seed=5)
        small, _i2 = build(num_keys=4000, table_factor=2.0, seed=5)
        assert (
            small.collision_stats().collision_rate
            >= big.collision_stats().collision_rate
        )
        assert small.collision_stats().collision_rate > 0

    def test_stats_fields(self):
        stats = EBFCollisionStats(keys=100, collided_keys=10, max_bucket=3)
        assert stats.collision_rate == pytest.approx(0.1)


class TestDynamics:
    def test_online_insert(self):
        ebf, items = build(num_keys=500, seed=6)
        ebf.insert(0xFEEDFACE, 777)
        assert ebf.lookup(0xFEEDFACE)[0] == 777

    def test_remove(self):
        ebf, items = build(num_keys=500, seed=7)
        key, value = next(iter(items.items()))
        assert ebf.remove(key) == value
        assert ebf.lookup(key)[0] is None
        assert len(ebf) == 499

    def test_remove_absent(self):
        ebf, items = build(num_keys=100, seed=8)
        assert ebf.remove(0xFFFFFFFF) is None or 0xFFFFFFFF in items


class TestStorage:
    def test_storage_split(self):
        ebf, _items = build(num_keys=1000)
        bits = ebf.storage_bits()
        assert bits["counting_bloom"] == ebf.num_buckets * 4
        assert bits["hash_table"] > bits["counting_bloom"]
