"""Unit tests for the EBF+CPE composite LPM baseline."""

import pytest

from repro.baselines import BinaryTrie, EBFCPELpm

from .conftest import sample_keys


@pytest.fixture
def ebf_lpm(small_table):
    return EBFCPELpm.build(small_table, stride=4, table_factor=8.0, seed=5)


class TestCorrectness:
    def test_equivalence_with_oracle(self, small_table, ebf_lpm, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 1000):
            assert ebf_lpm.lookup(key) == oracle.lookup(key), hex(key)

    def test_expansion_factor_in_band(self, ebf_lpm):
        """BGP-like tables at stride 4 should expand ~2-3.5x (paper ~2.5)."""
        assert 1.5 < ebf_lpm.expansion_factor < 4.0

    def test_targets_cover_all_lengths(self, small_table, ebf_lpm):
        longest = max(small_table.stats().populated_lengths)
        assert max(ebf_lpm.targets) >= longest


class TestCosts:
    def test_probes_counted(self, ebf_lpm, small_table, rng):
        keys = sample_keys(small_table, rng, 100)
        probes = [ebf_lpm.lookup_with_probes(k)[1] for k in keys]
        assert max(probes) >= 1

    def test_storage_dominated_by_offchip(self, ebf_lpm):
        bits = ebf_lpm.storage_bits()
        assert bits["hash_table"] > bits["counting_bloom"]

    def test_expanded_count_exceeds_original(self, ebf_lpm, small_table):
        assert ebf_lpm.expanded_count > len(small_table)
