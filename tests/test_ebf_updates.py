"""Tests for EBF+CPE dynamic updates and the CPE update amplification."""

import random

import pytest

from repro.baselines import BinaryTrie, EBFCPELpm
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthesize_trace
from repro.core.updates import ANNOUNCE

from .conftest import sample_keys


@pytest.fixture
def lpm(small_table):
    return EBFCPELpm.build(small_table, stride=4, table_factor=8.0, seed=5)


class TestUpdateCorrectness:
    def test_announce_then_lookup(self, lpm):
        prefix = Prefix.from_string("203.0.113.0/24")
        touched = lpm.announce(prefix, 99)
        assert touched >= 1
        key = prefix.network_int() | 0x7F
        assert lpm.lookup(key) == 99

    def test_withdraw_restores_shorter(self, lpm, small_table):
        outer = Prefix.from_string("100.64.0.0/16")
        inner = Prefix.from_string("100.64.128.0/24")
        lpm.announce(outer, 11)
        lpm.announce(inner, 22)
        key = inner.network_int() | 5
        assert lpm.lookup(key) == 22
        lpm.withdraw(inner)
        assert lpm.lookup(key) == 11  # the /16's expansions win again

    def test_withdraw_absent_is_noop(self, lpm):
        assert lpm.withdraw(Prefix.from_string("198.18.0.0/15")) == 0

    def test_trace_equivalence_with_oracle(self, small_table, rng):
        lpm = EBFCPELpm.build(small_table, stride=4, table_factor=8.0, seed=6)
        reference = RoutingTable(width=32)
        for prefix, next_hop in small_table:
            reference.add(prefix, next_hop)
        trace = synthesize_trace(small_table, 800, seed=7)
        for update in trace:
            if update.op == ANNOUNCE:
                lpm.announce(update.prefix, update.next_hop)
                reference.add(update.prefix, update.next_hop)
            else:
                lpm.withdraw(update.prefix)
                reference.remove(update.prefix)
        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 600):
            assert lpm.lookup(key) == oracle.lookup(key), hex(key)


class TestUpdateAmplification:
    def test_amplification_matches_expansion(self, lpm):
        """A prefix l bits below its CPE target touches ~2**l entries —
        the cost Chisel's prefix collapsing avoids."""
        targets = sorted(lpm._tables)
        # Pick a target with room below it.
        target = max(targets)
        length = target - 3
        prefix = Prefix(0b1011 << (length - 4), length, 32)
        touched = lpm.announce(prefix, 55)
        assert touched >= 1
        # Up to 8 expansions; fewer only where longer originals already win.
        assert touched <= 8
        fresh = Prefix((0b1100 << (length - 4)) | 1, length, 32)
        assert lpm.announce(fresh, 56) == 8  # virgin space: all 8 written

    def test_update_ops_accumulate(self, lpm):
        before = lpm.update_ops
        lpm.announce(Prefix.from_string("198.51.100.0/24"), 1)
        assert lpm.update_ops > before

    def test_expanded_count_tracks(self, lpm):
        before = lpm.expanded_count
        prefix = Prefix.from_string("198.51.100.0/22")
        lpm.announce(prefix, 1)
        grown = lpm.expanded_count
        assert grown > before
        lpm.withdraw(prefix)
        assert lpm.expanded_count < grown
