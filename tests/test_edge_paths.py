"""Edge-path coverage: sub-cell growth, span-0 batch lookups, pipeline
interleaving, IPv6 traces, and degenerate engines."""

import random

import numpy as np
import pytest

from repro.baselines import BinaryTrie
from repro.core import ChiselConfig, ChiselLPM, UpdateKind
from repro.core.batch import BatchLookup
from repro.prefix import Prefix, RoutingTable
from repro.simulator import LookupPipeline, MemoryBank, PipelineStage
from repro.workloads import ipv6_table, synthesize_trace

from .conftest import sample_keys


class TestSubCellGrowth:
    def test_grow_preserves_routes_and_pointer_width(self):
        table = RoutingTable.from_strings([("10.0.0.0/24", 1)])
        engine = ChiselLPM.build(table, ChiselConfig(seed=44))
        target = engine.subcell_for(Prefix.from_string("10.0.0.0/24"))
        original_capacity = target.capacity
        rng = random.Random(45)
        added = {}
        # Push far past the initial capacity to force repeated growth.
        while len(added) < original_capacity * 4:
            prefix = Prefix(rng.getrandbits(24), 24, 32)
            if engine.get_route(prefix) is not None:
                continue
            engine.announce(prefix, len(added) % 200 + 1)
            added[prefix] = len(added) % 200 + 1
        grown = engine.subcell_for(Prefix.from_string("10.0.0.0/24"))
        assert grown.capacity > original_capacity
        for prefix, expected in list(added.items())[:300]:
            assert engine.lookup(prefix.network_int() | 1) is not None
            assert engine.get_route(prefix) == expected

    def test_growth_counts_as_resetup(self):
        table = RoutingTable.from_strings([("10.0.0.0/24", 1)])
        engine = ChiselLPM.build(table, ChiselConfig(seed=46))
        rng = random.Random(47)
        kinds = set()
        for index in range(500):
            prefix = Prefix(rng.getrandbits(24), 24, 32)
            if engine.get_route(prefix) is None:
                kinds.add(engine.announce(prefix, 1))
        assert UpdateKind.RESETUP in kinds  # growth surfaced as re-setup


class TestBatchSpanZero:
    def test_greedy_plan_with_exact_length_cells(self, rng):
        """Greedy plans make span-0 sub-cells for isolated lengths; the
        batch path must handle the 1-bit vectors."""
        table = RoutingTable(width=32)
        for _ in range(200):
            table.add(Prefix(rng.getrandbits(24), 24, 32), rng.randrange(1, 99))
        for _ in range(50):
            table.add(Prefix(rng.getrandbits(8), 8, 32), rng.randrange(1, 99))
        engine = ChiselLPM.build(
            table, ChiselConfig(coverage="greedy", seed=48)
        )
        assert any(cell.span == 0 for cell in engine.subcells)
        batch = BatchLookup(engine)
        keys = sample_keys(table, rng, 800)
        assert batch.lookup_many(keys) == [engine.lookup(k) for k in keys]


class TestPipelineInterleave:
    def test_interleave_divides_initiation_interval(self):
        bank = MemoryBank("dram", 1 << 20, 16, on_chip=False)
        plain = PipelineStage("r", (bank,), interleave=1)
        banked = PipelineStage("r", (bank,), interleave=8)
        assert banked.stage_time_ns() == plain.stage_time_ns()
        assert banked.initiation_interval_ns() == pytest.approx(
            plain.initiation_interval_ns() / 8
        )

    def test_cycle_uses_initiation_interval(self):
        slow_banked = PipelineStage(
            "dram", (MemoryBank("d", 1 << 20, 16, on_chip=False),),
            interleave=16,
        )
        fast_logic = PipelineStage("logic", (), logic_ns=3.0)
        pipeline = LookupPipeline([slow_banked, fast_logic])
        assert pipeline.cycle_time_ns() == pytest.approx(
            max(slow_banked.initiation_interval_ns(), 3.0)
        )
        # Latency still pays the full access time.
        assert pipeline.latency_ns() > 40


class TestIPv6Traces:
    def test_trace_generation_and_application(self, rng):
        table = ipv6_table(800, seed=51)
        engine = ChiselLPM.build(table, ChiselConfig(width=128, seed=51))
        trace = synthesize_trace(table, 1500, seed=52)
        reference = RoutingTable(width=128)
        for prefix, next_hop in table:
            reference.add(prefix, next_hop)
        for update in trace:
            if update.op == "announce":
                engine.announce(update.prefix, update.next_hop)
                reference.add(update.prefix, update.next_hop)
            else:
                engine.withdraw(update.prefix)
                reference.remove(update.prefix)
        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 400):
            assert engine.lookup(key) == oracle.lookup(key)


class TestDegenerateEngines:
    def test_single_route_each_extreme_length(self):
        for length in (0, 1, 31, 32):
            table = RoutingTable(width=32)
            prefix = Prefix((1 << length) - 1 if length else 0, length, 32)
            table.add(prefix, 7)
            engine = ChiselLPM.build(table, ChiselConfig(seed=length + 1))
            covered = prefix.network_int() | ((1 << (32 - length)) - 1
                                              if length < 32 else 0)
            assert engine.lookup(covered) == 7
            if length:
                assert engine.lookup(0) is None

    def test_empty_then_populated(self):
        engine = ChiselLPM.build(RoutingTable(width=32), ChiselConfig(seed=9))
        assert engine.lookup(12345) is None
        engine.announce(Prefix.from_string("0.0.0.0/0"), 3)
        assert engine.lookup(12345) == 3

    def test_all_32_lengths_simultaneously(self, rng):
        table = RoutingTable(width=32)
        for length in range(33):
            value = rng.getrandbits(length) if length else 0
            table.add(Prefix(value, length, 32), length + 1)
        engine = ChiselLPM.build(table, ChiselConfig(seed=10))
        oracle = BinaryTrie.from_table(table)
        for key in sample_keys(table, rng, 500):
            assert engine.lookup(key) == oracle.lookup(key)
