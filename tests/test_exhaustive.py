"""Exhaustive verification at small width.

Over an 8-bit address space we can check *every* key (all 256) against
the brute-force answer, for a large systematic family of tables — every
pair and triple of prefixes drawn from a structured pool.  This is the
closest a test can get to a proof of the lookup datapath: all collapse
boundaries, bucket layering cases, and priority-encoder orderings occur
somewhere in the enumeration.
"""

import itertools

import pytest

from repro.baselines import BinaryTrie, TreeBitmap
from repro.core import ChiselConfig, ChiselLPM
from repro.prefix import Prefix, RoutingTable

WIDTH = 8

# A structured pool hitting every length and the nesting/sibling cases.
POOL = [
    Prefix(0, 0, WIDTH),            # default
    Prefix(0b1, 1, WIDTH),
    Prefix(0b10, 2, WIDTH),
    Prefix(0b101, 3, WIDTH),
    Prefix(0b1011, 4, WIDTH),
    Prefix(0b10110, 5, WIDTH),
    Prefix(0b101101, 6, WIDTH),
    Prefix(0b1011010, 7, WIDTH),
    Prefix(0b10110101, 8, WIDTH),   # host route under the chain above
    Prefix(0b0, 1, WIDTH),          # sibling subtrees
    Prefix(0b01, 2, WIDTH),
    Prefix(0b010, 3, WIDTH),
    Prefix(0b0000, 4, WIDTH),
    Prefix(0b00000000, 8, WIDTH),
]


def brute_force(routes, key):
    best_length, best = -1, None
    for prefix, next_hop in routes:
        if prefix.covers(key) and prefix.length > best_length:
            best_length, best = prefix.length, next_hop
    return best


def build_engine(routes, stride):
    table = RoutingTable(width=WIDTH)
    for index, (prefix, next_hop) in enumerate(routes):
        table.add(prefix, next_hop)
    return ChiselLPM.build(
        table,
        ChiselConfig(width=WIDTH, stride=stride, partitions=1, seed=5),
    )


class TestExhaustivePairs:
    @pytest.mark.parametrize("stride", [1, 2, 3, 4])
    def test_all_pairs_all_keys(self, stride):
        for a, b in itertools.combinations(POOL, 2):
            routes = [(a, 1), (b, 2)]
            engine = build_engine(routes, stride)
            for key in range(256):
                assert engine.lookup(key) == brute_force(routes, key), (
                    stride, str(a), str(b), key
                )


class TestExhaustiveTriples:
    def test_all_triples_all_keys_stride4(self):
        for combo in itertools.combinations(POOL, 3):
            routes = [(prefix, index + 1) for index, prefix in enumerate(combo)]
            engine = build_engine(routes, 4)
            for key in range(256):
                assert engine.lookup(key) == brute_force(routes, key), (
                    [str(p) for p in combo], key
                )


class TestExhaustiveDynamic:
    def test_withdraw_each_from_full_pool(self):
        """Build the full pool, withdraw each prefix in turn, verify all
        256 keys after every removal and after re-announce."""
        routes = [(prefix, index + 1) for index, prefix in enumerate(POOL)]
        engine = build_engine(routes, 4)
        for victim_index, (victim, victim_hop) in enumerate(routes):
            engine.withdraw(victim)
            remaining = [r for i, r in enumerate(routes) if i != victim_index]
            for key in range(256):
                assert engine.lookup(key) == brute_force(remaining, key), (
                    str(victim), key
                )
            engine.announce(victim, victim_hop)
            for key in range(0, 256, 7):
                assert engine.lookup(key) == brute_force(routes, key)

    def test_other_schemes_agree_on_pool(self):
        table = RoutingTable(width=WIDTH)
        for index, prefix in enumerate(POOL):
            table.add(prefix, index + 1)
        trie = BinaryTrie.from_table(table)
        tree = TreeBitmap.from_table(table, stride=3)
        engine = ChiselLPM.build(
            table, ChiselConfig(width=WIDTH, stride=3, partitions=1, seed=6)
        )
        for key in range(256):
            expected = trie.lookup(key)
            assert tree.lookup(key) == expected
            assert engine.lookup(key) == expected
