"""repro.faults: syndromes, the fault injector, and the scrub pass."""

import pytest

from repro.core import ChiselConfig, ChiselLPM
from repro.faults import block_checksums, syndrome, verify_blocks, words_match
from repro.faults.inject import TABLE_KINDS, FaultInjector
from repro.faults.scrub import scrub_engine
from repro.workloads.synthetic import synthetic_table

CONFIG = ChiselConfig(stride=4)


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry per module: fault/degrade runs record long
    lock holds and large counter values that must not leak into other
    modules' global-registry assertions (e.g. the serve p99 gate)."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)



@pytest.fixture(scope="module")
def engine():
    table = synthetic_table(1_200, seed=7)
    return ChiselLPM.build(table, CONFIG), table


def fresh_engine(size=1_200, seed=7):
    return ChiselLPM.build(synthetic_table(size, seed=seed), CONFIG)


# ---------------------------------------------------------------------------
# checksum primitives
# ---------------------------------------------------------------------------

def test_syndrome_detects_every_single_bit_flip():
    for word in (0, 1, 0xDEAD_BEEF, (1 << 63) | 5):
        for bit in range(word.bit_length() + 2):
            assert syndrome(word) != syndrome(word ^ (1 << bit))


def test_syndrome_detects_every_double_bit_flip():
    word = 0b1011_0010
    for i in range(10):
        for j in range(i + 1, 10):
            flipped = word ^ (1 << i) ^ (1 << j)
            assert syndrome(word) != syndrome(flipped)


def test_syndrome_distinguishes_signs_and_none():
    assert syndrome(-1) != syndrome(1)
    assert syndrome(None) != syndrome(0)
    assert not words_match(3, 5)
    assert words_match(42, 42)


def test_block_checksums_localise_damage():
    words = list(range(20))
    stored = block_checksums(words, block=8)
    assert verify_blocks(words, stored, block=8) == []
    words[9] ^= 1 << 4
    assert verify_blocks(words, stored, block=8) == [1]


def test_block_checksums_detect_intra_block_swap():
    words = [3, 5, 3, 5, 3, 5, 3, 5]
    stored = block_checksums(words, block=8)
    swapped = [5, 3, 3, 5, 3, 5, 3, 5]
    assert verify_blocks(swapped, stored, block=8) == [0]


def test_verify_blocks_rejects_stale_shape():
    words = [1, 2, 3]
    stored = block_checksums(words)
    assert verify_blocks(words + [4], stored) == [0]


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------

def test_injector_is_deterministic():
    def run(seed):
        engine = fresh_engine()
        injector = FaultInjector(seed=seed)
        return [
            (r.kind, r.subcell_base, r.address, r.bit)
            for r in (injector.flip_table_bit(engine) for _ in range(40))
            if r is not None
        ]

    assert run(11) == run(11)
    assert run(11) != run(12)


@pytest.mark.parametrize("kind", [k for k in TABLE_KINDS
                                  if not k.startswith("spillover")])
def test_injector_hits_each_table_kind(kind):
    engine = fresh_engine()
    injector = FaultInjector(seed=3)
    record = injector.flip_table_bit(engine, kind=kind)
    assert record is not None and record.kind == kind
    assert record.old != record.new


def test_injected_flip_is_a_real_hardware_change():
    engine = fresh_engine()
    injector = FaultInjector(seed=5)
    record = injector.flip_table_bit(engine, kind="filter")
    subcell = next(s for s in engine.subcells if s.base == record.subcell_base)
    assert subcell.filter_table[record.address] == record.new


def test_mangle_trace_adds_duplicates_and_reorders():
    table = synthetic_table(500, seed=2)
    from repro.workloads.traces import synthesize_trace

    trace = synthesize_trace(table, 300, seed=2)
    injector = FaultInjector(seed=9)
    mangled = injector.mangle_trace(trace, duplicate_rate=0.1)
    assert len(mangled) > len(trace)


def test_malformed_updates_all_rejected():
    from repro.core.updates import MalformedUpdateError, UpdateOp

    injector = FaultInjector(seed=1)
    for kwargs in injector.malformed_updates(25):
        with pytest.raises(MalformedUpdateError):
            UpdateOp(**kwargs)


# ---------------------------------------------------------------------------
# scrub: detect + repair, per table kind
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", [k for k in TABLE_KINDS
                                  if not k.startswith("spillover")])
def test_scrub_repairs_single_bit_flip(kind):
    engine = fresh_engine()
    baseline = {key: engine.lookup(key) for key in range(0, 2 ** 32, 2 ** 24)}
    injector = FaultInjector(seed=13)
    record = injector.flip_table_bit(engine, kind=kind)
    assert record is not None

    report = scrub_engine(engine)
    assert report.total_detected >= 1
    assert report.total_repaired == report.total_detected
    assert report.healthy
    # A second pass over the repaired engine finds nothing.
    assert scrub_engine(engine).clean
    for key, expected in baseline.items():
        assert engine.lookup(key) == expected


def test_scrub_repairs_a_burst_of_faults():
    engine = fresh_engine()
    injector = FaultInjector(seed=17)
    flipped = sum(
        injector.flip_table_bit(engine) is not None for _ in range(50)
    )
    assert flipped == 50
    report = scrub_engine(engine)
    assert report.healthy
    assert scrub_engine(engine).clean


def test_scrub_repairs_restore_the_exact_image():
    from repro.core.image import HardwareImage

    engine = fresh_engine()
    clean = HardwareImage.snapshot(engine)
    injector = FaultInjector(seed=19)
    # Write-back repairs only: an Index group repair is a re-peel, which
    # may land on a different (equivalent) encoding of the same function.
    for kind in ("filter", "dirty", "bitvector", "regionptr", "result"):
        for _ in range(5):
            injector.flip_table_bit(engine, kind=kind)
    scrub_engine(engine)
    repaired = HardwareImage.snapshot(engine)
    delta = clean.diff(repaired)
    assert delta.word_count == 0, delta.tables_touched()


def test_scrub_counts_repairs_as_hardware_writes():
    engine = fresh_engine()
    before = sum(s.words_written for s in engine.subcells)
    injector = FaultInjector(seed=23)
    assert injector.flip_table_bit(engine, kind="filter") is not None
    scrub_engine(engine)
    assert sum(s.words_written for s in engine.subcells) > before


def test_scrub_flags_shadow_corruption_as_uncorrectable():
    engine = fresh_engine()
    injector = FaultInjector(seed=29)
    assert injector.corrupt_shadow_pointer(engine) is not None
    report = scrub_engine(engine)
    assert not report.healthy
    assert report.uncorrectable


def test_scramble_detected_via_full_word_backstop():
    # Multi-bit scrambles may collide on the syndrome; the scrubber's raw
    # word comparison still catches them (counted as ECC escapes if so).
    engine = fresh_engine()
    injector = FaultInjector(seed=31)
    for _ in range(10):
        assert injector.scramble_word(engine) is not None
        report = scrub_engine(engine)
        assert not report.clean
        assert report.healthy


def test_forced_setup_failure_raises_out_of_raw_engine():
    from repro.bloomier.filter import BloomierSetupError
    from repro.prefix.prefix import Prefix

    engine = fresh_engine()
    injector = FaultInjector(seed=37)
    with injector.force_setup_failure(times=3) as delivered:
        with pytest.raises(BloomierSetupError):
            for i in range(64):
                engine.announce(Prefix.from_string(f"203.0.{i}.0/24"), 7)
    assert delivered[0] >= 1
