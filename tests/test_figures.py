"""Tests for the ASCII figure renderers."""

import pytest

from repro.analysis.figures import bar_chart, line_chart


class TestBarChart:
    ROWS = [
        {"t": "A", "x": 2.0, "y": 8.0},
        {"t": "B", "x": 4.0, "y": 16.0},
    ]

    def test_bars_scale_linearly(self):
        chart = bar_chart(self.ROWS, "t", ["x", "y"], width=16)
        lines = [line for line in chart.splitlines() if "|" in line]
        lengths = [line.split("|")[1].count("#") for line in lines]
        # y of B is the max -> full width; x of A is 1/8 of it.
        assert lengths[3] == 16
        assert lengths[0] == pytest.approx(2, abs=1)

    def test_values_annotated(self):
        chart = bar_chart(self.ROWS, "t", ["x"])
        assert "2.00" in chart and "4.00" in chart

    def test_title_and_groups(self):
        chart = bar_chart(self.ROWS, "t", ["x", "y"], title="demo")
        assert chart.splitlines()[0] == "demo"
        assert "A" in chart and "B" in chart

    def test_log_scale_compresses(self):
        rows = [{"t": "r", "small": 1e-9, "big": 1.0}]
        linear = bar_chart(rows, "t", ["small", "big"], width=20)
        logarithmic = bar_chart(rows, "t", ["small", "big"], width=20, log=True)
        small_linear = linear.splitlines()[0].split("|")[1].count("#")
        small_log = logarithmic.splitlines()[0].split("|")[1].count("#")
        assert small_log >= small_linear

    def test_empty(self):
        assert "(no data)" in bar_chart([], "t", ["x"], log=True)

    def test_zero_values_render(self):
        chart = bar_chart([{"t": "z", "x": 0.0, "y": 5.0}], "t", ["x", "y"])
        assert "0" in chart


class TestLineChart:
    def test_monotone_series_monotone_rows(self):
        chart = line_chart(
            {"p": [1e-2, 1e-4, 1e-6, 1e-8]}, [1, 2, 3, 4], height=8,
        )
        grid = [line for line in chart.splitlines() if line.startswith("|")]
        rows_of_marker = []
        for column in range(4):
            for row_index, line in enumerate(grid):
                cells = line[2:].split("  ")
                if column < len(cells) and cells[column] == "a":
                    rows_of_marker.append(row_index)
                    break
        assert rows_of_marker == sorted(rows_of_marker)  # falls left->right

    def test_legend_and_axes(self):
        chart = line_chart({"alpha": [1, 2], "beta": [3, 4]}, ["L", "R"],
                           log=False)
        assert "a=alpha" in chart and "b=beta" in chart
        assert "x: L R" in chart

    def test_log_flag_in_header(self):
        assert "[log scale]" in line_chart({"s": [1, 10]}, [0, 1])
        assert "[log scale]" not in line_chart({"s": [1, 10]}, [0, 1],
                                               log=False)

    def test_empty(self):
        assert "(no data)" in line_chart({"s": [0.0]}, [0])
