"""Tests for range-to-prefix conversion and the 5-tuple classifier."""

import random

import pytest

from repro.apps import (
    FiveTupleClassifier,
    FiveTupleRule,
    PortRange,
    prefixes_cover,
    range_to_prefixes,
)
from repro.prefix import Prefix, key_from_string

TCP, UDP = 6, 17


class TestRangeToPrefixes:
    def test_full_range_is_one_prefix(self):
        prefixes = range_to_prefixes(0, 65_535, 16)
        assert len(prefixes) == 1
        assert prefixes[0].length == 0

    def test_exact_port(self):
        prefixes = range_to_prefixes(80, 80, 16)
        assert len(prefixes) == 1
        assert prefixes[0].length == 16
        assert prefixes[0].value == 80

    def test_classic_ephemeral_range(self):
        """1024-65535 splits into exactly 6 aligned prefixes."""
        prefixes = range_to_prefixes(1024, 65_535, 16)
        assert len(prefixes) == 6
        assert all(p.width == 16 for p in prefixes)

    def test_worst_case_bound(self):
        """Any 16-bit range needs at most 2*16 - 2 = 30 prefixes."""
        worst = range_to_prefixes(1, 65_534, 16)
        assert len(worst) <= 30

    def test_exact_coverage_exhaustive_small(self):
        """8-bit space, every (low, high) pair: the union must be exact."""
        for low in range(0, 256, 17):
            for high in range(low, 256, 13):
                prefixes = range_to_prefixes(low, high, 8)
                for value in range(256):
                    expected = low <= value <= high
                    assert prefixes_cover(prefixes, value) == expected, (
                        low, high, value
                    )

    def test_prefixes_disjoint(self):
        prefixes = range_to_prefixes(100, 9999, 16)
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains(b) and not b.contains(a)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 4, 16)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 1 << 16, 16)


class TestPortRange:
    def test_covers(self):
        http_alt = PortRange(8000, 8999)
        assert 8080 in http_alt
        assert 80 not in http_alt

    def test_exact_and_any(self):
        assert PortRange.exact(443).covers(443)
        assert not PortRange.exact(443).covers(444)
        assert PortRange.any().covers(0) and PortRange.any().covers(65_535)

    def test_expansion_count(self):
        assert PortRange.any().expansion_count() == 1
        assert PortRange.exact(80).expansion_count() == 1
        assert PortRange(1024, 65_535).expansion_count() == 6

    def test_equality_hash(self):
        assert PortRange(1, 5) == PortRange(1, 5)
        assert hash(PortRange(1, 5)) == hash(PortRange(1, 5))
        assert PortRange(1, 5) != PortRange(1, 6)


def make_rule(src, dst, sports, dports, protocol, priority, action):
    return FiveTupleRule(
        Prefix.from_string(src), Prefix.from_string(dst),
        sports, dports, protocol, priority, action,
    )


@pytest.fixture
def firewall():
    any_port = PortRange.any()
    return FiveTupleClassifier([
        make_rule("0.0.0.0/0", "0.0.0.0/0", any_port, any_port, None, 0, 0),
        make_rule("0.0.0.0/0", "10.0.0.0/8", any_port,
                  PortRange.exact(80), TCP, 50, 1),          # web in
        make_rule("0.0.0.0/0", "10.0.0.0/8", any_port,
                  PortRange.exact(443), TCP, 50, 1),         # https in
        make_rule("10.0.0.0/8", "0.0.0.0/0",
                  PortRange(1024, 65_535), any_port, None, 40, 1),  # out
        make_rule("192.0.2.0/24", "10.0.0.0/8", any_port, any_port,
                  None, 90, 0),                              # blocklist
        make_rule("0.0.0.0/0", "10.9.9.9/32", any_port,
                  PortRange.exact(22), TCP, 80, 1),          # bastion ssh
    ], seed=5)


class TestFiveTupleClassifier:
    def test_firewall_semantics(self, firewall):
        def verdict(src, dst, sp, dp, proto):
            rule = firewall.classify(
                key_from_string(src), key_from_string(dst), sp, dp, proto
            )
            return rule.action if rule else None

        assert verdict("8.8.8.8", "10.1.1.1", 5555, 80, TCP) == 1
        assert verdict("8.8.8.8", "10.1.1.1", 5555, 81, TCP) == 0   # default
        assert verdict("8.8.8.8", "10.1.1.1", 5555, 80, UDP) == 0   # not TCP
        assert verdict("10.1.1.1", "8.8.8.8", 40_000, 53, UDP) == 1  # out
        assert verdict("10.1.1.1", "8.8.8.8", 53, 53, UDP) == 0      # low sport
        assert verdict("192.0.2.7", "10.1.1.1", 5555, 80, TCP) == 0  # blocked
        assert verdict("8.8.8.8", "10.9.9.9", 5555, 22, TCP) == 1    # bastion

    def test_matches_brute_force(self, firewall):
        rng = random.Random(1)
        for _ in range(3000):
            args = (rng.getrandbits(32), rng.getrandbits(32),
                    rng.randrange(1 << 16), rng.choice((22, 80, 443, 8080,
                                                        rng.randrange(1 << 16))),
                    rng.choice((TCP, UDP, 1, 47)))
            assert firewall.classify(*args) == \
                firewall.classify_brute_force(*args), args

    def test_random_rulesets_match_brute_force(self):
        rng = random.Random(2)
        any_port = PortRange.any()
        rules = []
        for priority in range(40):
            src_len = rng.choice((0, 8, 16, 24))
            dst_len = rng.choice((0, 8, 16, 24))
            low = rng.randrange(1 << 16)
            high = rng.randrange(low, 1 << 16)
            rules.append(FiveTupleRule(
                Prefix(rng.getrandbits(src_len) if src_len else 0, src_len, 32),
                Prefix(rng.getrandbits(dst_len) if dst_len else 0, dst_len, 32),
                rng.choice((any_port, PortRange(low, high))),
                rng.choice((any_port, PortRange.exact(rng.randrange(1 << 16)))),
                rng.choice((None, TCP, UDP)),
                priority=rng.randrange(100),
                action=rng.randrange(4),
            ))
        classifier = FiveTupleClassifier(rules, seed=3)
        for _ in range(3000):
            args = (rng.getrandbits(32), rng.getrandbits(32),
                    rng.randrange(1 << 16), rng.randrange(1 << 16),
                    rng.choice((TCP, UDP, 1)))
            assert classifier.classify(*args) == \
                classifier.classify_brute_force(*args), args

    def test_no_rules_rejected(self):
        with pytest.raises(ValueError):
            FiveTupleClassifier([])

    def test_field_stats(self, firewall):
        stats = firewall.field_stats()
        assert stats["rules"] == 6
        assert stats["src_prefixes"] >= 3
        assert stats["dport_prefixes"] >= 4

    def test_priority_tie_breaks_stably(self):
        any_port = PortRange.any()
        first = make_rule("10.0.0.0/8", "0.0.0.0/0", any_port, any_port,
                          None, 10, 1)
        second = make_rule("10.0.0.0/8", "0.0.0.0/0", any_port, any_port,
                           None, 10, 2)
        classifier = FiveTupleClassifier([first, second])
        winner = classifier.classify(
            key_from_string("10.1.1.1"), 0, 0, 0, TCP
        )
        assert winner.action == 1  # earlier rule wins the tie
