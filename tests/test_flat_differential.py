"""Differential suite for the flat datapath (``repro.core.flatpath``).

The flat pipeline — fused per-bucket records, packed hash gathers, the
optional JIT kernel — must be bit-exact against the legacy per-group
numpy plan *and* the scalar Fig. 6 datapath, over both Index Table
backends, every span 0-6, spillover TCAM overrides, and mid-churn
recompiles.  The suite also pins the degraded paths: the unpacked
gather fallback, the true-modulus fallback, the interpreted kernel
mirror (so the JIT semantics hold even where numba is absent), the
shard codec's flat layout, and fault injection into fused records.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ChiselConfig, ChiselLPM
from repro.core import flatpath
from repro.core.batch import BatchLookup, _SubCellPlan
from repro.core.flatpath import (
    FlatSubCellPlan,
    GroupFusionError,
    RECORD_LANES,
    aligned_zeros,
    interpreted_kernels,
    jit_available,
)
from repro.faults.inject import FLAT_RECORD_KINDS, corrupt_record_word
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthetic_table
from repro.workloads.traces import synthesize_trace
from repro.core.updates import apply_trace

BACKENDS = ("bloomier", "fuse")


def build_engine(backend, table, seed=2006, stride=4):
    config = ChiselConfig(width=table.width, stride=stride, seed=seed,
                          index_backend=backend)
    return ChiselLPM.build(table, config)


def random_table(rng, width, routes):
    table = RoutingTable(width=width)
    for _ in range(routes):
        length = rng.randint(0, width)
        value = rng.getrandbits(length) if length else 0
        table.add(Prefix(value, length, width), rng.randint(1, 200))
    return table


def probe_keys(engine, rng, extra=300):
    """Random keys plus keys aimed under every stored route, at every
    expansion corner (all-zeros, all-ones, random collapsed bits)."""
    width = engine.config.width
    keys = [rng.getrandbits(width) for _ in range(extra)]
    for prefix, _hop in engine.iter_routes():
        free = width - prefix.length
        base_key = prefix.network_int()
        keys.append(base_key)
        if free:
            keys.append(base_key | ((1 << free) - 1))
            keys.append(base_key | rng.getrandbits(free))
    return np.array(keys, dtype=np.uint64)


def assert_flat_matches(engine, keys, scalar_sample=200):
    """flat == legacy on the whole batch; both == scalar on a sample."""
    keys = np.asarray(keys, dtype=np.uint64)
    legacy = BatchLookup(engine, datapath="legacy")
    flat = BatchLookup(engine, datapath="flat")
    expected = legacy.lookup_batch(keys)
    got = flat.lookup_batch(keys)
    assert np.array_equal(got, expected)
    for position in range(min(scalar_sample, keys.size)):
        answer = engine.lookup(int(keys[position]))
        scalar = -1 if answer is None else int(answer)
        assert int(expected[position]) == scalar
    return flat


def flat_plans(lookup):
    return [plan for plan in lookup._plans if getattr(plan, "kind", "")
            == "flat"]


class TestEverySpan:
    """Spans 0-6, including the span-6 inclusive-rank-mask corner."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("span", range(7))
    def test_single_span_table(self, backend, span):
        rng = random.Random(130 + span)
        width = 24
        table = RoutingTable(width=width)
        length = width - span
        for _ in range(80):
            value = rng.getrandbits(length) if length else 0
            table.add(Prefix(value, length, width), rng.randint(1, 200))
        engine = build_engine(backend, table, seed=7 + span)
        assert_flat_matches(engine, probe_keys(engine, rng))


class TestHypothesisDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.data_too_large],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           width=st.sampled_from([16, 24, 32]),
           routes=st.integers(min_value=1, max_value=220))
    def test_random_tables(self, backend, seed, width, routes):
        rng = random.Random(seed)
        table = random_table(rng, width, routes)
        engine = build_engine(backend, table, seed=seed & 0xFFFF)
        assert_flat_matches(engine, probe_keys(engine, rng, extra=120),
                            scalar_sample=80)


class TestChurnRecompile:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_churn_recompiles_stay_exact(self, backend):
        table = synthetic_table(1_500, seed=11)
        engine = build_engine(backend, table, seed=11)
        rng = random.Random(11)
        trace = synthesize_trace(table, 300, seed=12)
        for start in range(0, 300, 60):
            apply_trace(engine, trace[start:start + 60])
            flat = assert_flat_matches(
                engine, probe_keys(engine, rng, extra=150),
                scalar_sample=60)
            assert flat_plans(flat), "recompile should emit flat plans"

    def test_stale_flag_tracks_updates(self):
        table = synthetic_table(400, seed=13)
        engine = build_engine("bloomier", table, seed=13)
        flat = BatchLookup(engine, datapath="flat")
        assert not flat.stale
        apply_trace(engine, synthesize_trace(table, 5, seed=14)[:5])
        assert flat.stale


class TestSpillover:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spilled_keys_resolve_identically(self, backend):
        """Engines big enough to park entries in the TCAM: the flat
        spill override must shadow the decode exactly like the scalar
        and legacy paths."""
        table = synthetic_table(4_000, seed=17)
        engine = build_engine(backend, table, seed=17)
        flat = BatchLookup(engine, datapath="flat")
        spilled = [plan for plan in flat_plans(flat)
                   if len(plan.spill_keys)]
        rng = random.Random(17)
        keys = probe_keys(engine, rng)
        assert_flat_matches(engine, keys)
        if spilled:
            # Aim keys straight at every spilled collapsed prefix.
            width = engine.config.width
            aimed = []
            for plan in spilled:
                free = width - plan.base
                for collapsed in plan.spill_keys[:32]:
                    base_key = int(collapsed) << free
                    aimed.append(base_key)
                    aimed.append(base_key | rng.getrandbits(free)
                                 if free else base_key)
            assert_flat_matches(
                engine, np.array(aimed, dtype=np.uint64))


class TestDegradedPaths:
    """The fallbacks must stay bit-exact, not just the fast path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unpacked_gather_fallback(self, backend):
        table = synthetic_table(900, seed=23)
        engine = build_engine(backend, table, seed=23)
        flat = BatchLookup(engine, datapath="flat")
        for plan in flat_plans(flat):
            assert plan.fused.packed_tables is not None
            plan.fused.packed_tables = None  # force the unpacked loop
        legacy = BatchLookup(engine, datapath="legacy")
        keys = probe_keys(engine, random.Random(23))
        assert np.array_equal(flat.lookup_batch(keys),
                              legacy.lookup_batch(keys))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_true_modulus_fallback(self, backend):
        table = synthetic_table(900, seed=29)
        engine = build_engine(backend, table, seed=29)
        flat = BatchLookup(engine, datapath="flat")
        for plan in flat_plans(flat):
            assert plan.fused.condsub_ok
            plan.fused.condsub_ok = False  # force np.mod
        legacy = BatchLookup(engine, datapath="legacy")
        keys = probe_keys(engine, random.Random(29))
        assert np.array_equal(flat.lookup_batch(keys),
                              legacy.lookup_batch(keys))

    def test_group_fusion_error_keeps_reference_plan(self, monkeypatch):
        table = synthetic_table(600, seed=31)
        engine = build_engine("bloomier", table, seed=31)

        def refuse(cls, legacy, use_jit=False):
            raise GroupFusionError("forced by test")

        monkeypatch.setattr(FlatSubCellPlan, "compile",
                            classmethod(refuse))
        flat = BatchLookup(engine, datapath="flat")
        assert not flat_plans(flat)
        assert all(isinstance(plan, _SubCellPlan)
                   for plan in flat._plans)
        legacy = BatchLookup(engine, datapath="legacy")
        keys = probe_keys(engine, random.Random(31))
        assert np.array_equal(flat.lookup_batch(keys),
                              legacy.lookup_batch(keys))

    def test_use_jit_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setitem(flatpath._JIT_STATE, "checked", True)
        monkeypatch.setitem(flatpath._JIT_STATE, "kernels", None)
        table = synthetic_table(600, seed=37)
        engine = build_engine("bloomier", table, seed=37)
        jit = BatchLookup(engine, datapath="flat", use_jit=True)
        legacy = BatchLookup(engine, datapath="legacy")
        keys = probe_keys(engine, random.Random(37))
        assert np.array_equal(jit.lookup_batch(keys),
                              legacy.lookup_batch(keys))


class TestInterpretedKernelMirror:
    """The per-key kernel, run interpreted, pins the JIT semantics on
    boxes without numba."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kernel_matches_numpy_pipeline(self, backend):
        table = synthetic_table(800, seed=41)
        engine = build_engine(backend, table, seed=41)
        flat = BatchLookup(engine, datapath="flat")
        mirror = interpreted_kernels()
        rng = random.Random(41)
        keys = probe_keys(engine, rng, extra=60)[:250]
        for plan in flat_plans(flat):
            via_numpy = np.array(plan._lookup_numpy(keys))
            via_kernel = np.array(plan._lookup_kernel(keys, mirror))
            assert np.array_equal(via_kernel, via_numpy)

    def test_jit_available_reports_probe_result(self):
        # Whatever this box has, the probe must be stable and boolean.
        assert jit_available() in (True, False)
        assert jit_available() == jit_available()


class TestCodecFlatRoundtrip:
    def test_flat_plans_survive_export_attach(self):
        from repro.router import ForwardingEngine
        from repro.serve import RecompilePolicy, SnapshotRouter
        from repro.shard.codec import SharedSnapshot

        table = synthetic_table(1_200, seed=43)
        fib = ForwardingEngine.from_table(table)
        router = SnapshotRouter(fib, RecompilePolicy())
        snapshot = router._snapshot  # the compiled BatchLookup
        assert flat_plans(snapshot), \
            "serve recompiles should emit flat plans"
        keys = np.array(
            [random.Random(43).getrandbits(table.width)
             for _ in range(3_000)], dtype=np.uint64)
        segment = SharedSnapshot.export(
            snapshot, router.overlay_arrays(), 3)
        try:
            attached = SharedSnapshot.attach(segment.name)
            shared = attached.to_lookup()
            assert flat_plans(shared), \
                "attached snapshot should rebuild flat plans"
            for plan in flat_plans(shared):
                assert plan.use_jit is False  # per-process choice
            assert np.array_equal(shared.lookup_batch(keys),
                                  snapshot.lookup_batch(keys))
            attached.close()
        finally:
            segment.retire()


class TestRecordFaults:
    """Scrub/injection must locate words inside the fused records."""

    def _plan_with_live_bucket(self):
        table = synthetic_table(600, seed=47)
        engine = build_engine("bloomier", table, seed=47)
        flat = BatchLookup(engine, datapath="flat")
        for plan in flat_plans(flat):
            live = np.flatnonzero(
                plan.records[:, RECORD_LANES["valid"]])
            if live.size:
                return engine, flat, plan, int(live[0])
        pytest.fail("no live bucket found")

    @pytest.mark.parametrize("kind", sorted(FLAT_RECORD_KINDS))
    def test_corrupt_record_word_flips_one_lane(self, kind):
        _engine, _flat, plan, pointer = self._plan_with_live_bucket()
        before = plan.records.copy()
        record = corrupt_record_word(plan, kind, pointer, bit=3)
        assert record.kind == kind
        after = plan.records
        changed = np.argwhere(before != after)
        assert len(changed) == 1
        row, lane = changed[0]
        assert row == pointer
        assert lane == FLAT_RECORD_KINDS[kind]

    def test_dirty_corruption_changes_answers(self):
        engine, flat, plan, pointer = self._plan_with_live_bucket()
        keys = probe_keys(engine, random.Random(47))
        before = flat.lookup_batch(keys).copy()
        corrupt_record_word(plan, "dirty", pointer)
        after = flat.lookup_batch(keys)
        assert not np.array_equal(before, after), \
            "invalidating a live bucket must change some answer"

    def test_unknown_kind_rejected(self):
        _engine, _flat, plan, pointer = self._plan_with_live_bucket()
        with pytest.raises(ValueError):
            corrupt_record_word(plan, "index", pointer)


class TestFlatLayoutPrimitives:
    def test_aligned_zeros_is_cache_line_aligned(self):
        for shape in ((7, 8), (1, 8), (129, 8), 64):
            array = aligned_zeros(shape)
            assert array.ctypes.data % 64 == 0
            assert not array.any()

    def test_record_rows_are_one_cache_line(self):
        table = synthetic_table(200, seed=53)
        engine = build_engine("bloomier", table, seed=53)
        flat = BatchLookup(engine, datapath="flat")
        for plan in flat_plans(flat):
            assert plan.records.strides[0] == 64
            assert plan.records.ctypes.data % 64 == 0

    def test_legacy_view_properties_alias_records(self):
        table = synthetic_table(200, seed=59)
        engine = build_engine("bloomier", table, seed=59)
        flat = BatchLookup(engine, datapath="flat")
        plan = flat_plans(flat)[0]
        legacy = BatchLookup(engine, datapath="legacy")
        reference = next(p for p in legacy._plans
                         if p.base == plan.base and p.span == plan.span)
        assert np.array_equal(plan.filter_values,
                              reference.filter_values)
        assert np.array_equal(plan.filter_valid, reference.filter_valid)
        assert np.array_equal(plan.bit_vectors, reference.bit_vectors)
        assert np.array_equal(plan.region_ptr, reference.region_ptr)

    def test_packed_layout_active_on_standard_builds(self):
        for backend in BACKENDS:
            table = synthetic_table(400, seed=61)
            engine = build_engine(backend, table, seed=61)
            flat = BatchLookup(engine, datapath="flat")
            for plan in flat_plans(flat):
                fused = plan.fused
                assert fused.packed_tables is not None
                assert fused.condsub_ok
                assert len(fused.packed_shifts) == fused.num_hashes
                if backend == "fuse":
                    assert fused.packed_start_shift is not None
