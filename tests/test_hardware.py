"""Tests for the hardware cost models: eDRAM, power, latency, FPGA."""

import pytest

from repro.hardware import (
    PAPER_TABLE2,
    XC2VP100,
    EDRAMMacro,
    bram_count,
    chisel_accesses,
    chisel_extra_cycles,
    chisel_power,
    ebf_accesses,
    estimate_resources,
    tcam_accesses,
    tcam_power,
    tree_bitmap_accesses,
)


class TestEDRAM:
    def test_power_monotonic_in_bits(self):
        small = EDRAMMacro(10_000_000)
        large = EDRAMMacro(100_000_000)
        assert large.power_watts(200e6) > small.power_watts(200e6)

    def test_power_monotonic_in_rate(self):
        macro = EDRAMMacro(50_000_000)
        assert macro.power_watts(200e6) > macro.power_watts(100e6)

    def test_small_macros_less_efficient(self):
        """§6.5: 'Smaller eDRAMs are less power efficient (watts-per-bit)
        than larger ones'."""
        small = EDRAMMacro(5_000_000)
        large = EDRAMMacro(100_000_000)
        assert small.watts_per_mbit(200e6) > large.watts_per_mbit(200e6)

    def test_access_time_grows_slowly(self):
        assert EDRAMMacro(100_000_000).access_time_ns() < 2 * EDRAMMacro(
            10_000_000
        ).access_time_ns()


class TestPowerModel:
    def test_fig13_anchor_512k(self):
        """Fig. 13: ~5.5 W at 512K IPv4 prefixes, 200 Msps."""
        report = chisel_power(512_000)
        assert report.total_watts == pytest.approx(5.5, abs=0.3)

    def test_fig13_slow_growth(self):
        """Power grows sub-linearly: 4x the table, much less than 2x power."""
        p256 = chisel_power(256_000).total_watts
        p1m = chisel_power(1_000_000).total_watts
        assert p1m > p256
        assert p1m / p256 < 1.6

    def test_logic_fraction_band(self):
        """§6.5: logic is ~5-7% of eDRAM power."""
        report = chisel_power(512_000)
        assert 0.05 <= report.logic_watts / report.edram_watts <= 0.07

    def test_fig16_crossover_shape(self):
        """Fig. 16: ~43% below TCAM at 128K, ~5x below at 512K."""
        c128 = chisel_power(128_000).total_watts
        t128 = tcam_power(128_000).total_watts
        assert 0.35 < 1 - c128 / t128 < 0.55
        c512 = chisel_power(512_000).total_watts
        t512 = tcam_power(512_000).total_watts
        assert 4.5 < t512 / c512 < 6.5

    def test_tcam_power_dominates_at_scale(self):
        assert tcam_power(1_000_000).total_watts > chisel_power(
            1_000_000
        ).total_watts * 7


class TestLatencyModel:
    def test_chisel_key_width_independent(self):
        """§6.7.1: 4 on-chip accesses for IPv4 *and* IPv6."""
        v4 = chisel_accesses(32)
        v6 = chisel_accesses(128)
        assert v4.on_chip == v6.on_chip == 4
        assert v4.off_chip == v6.off_chip == 1

    def test_chisel_extra_cycles(self):
        assert chisel_extra_cycles(32) == 0
        assert chisel_extra_cycles(128) == 1

    def test_tree_bitmap_paper_numbers(self):
        """§6.7.1: 11 accesses for IPv4, ~40 for IPv6."""
        assert tree_bitmap_accesses(32).off_chip == 11
        assert 38 <= tree_bitmap_accesses(128).off_chip <= 44

    def test_latency_comparison(self):
        """Chisel's mostly-on-chip path must be far faster end to end."""
        chisel_ns = chisel_accesses(32).latency_ns()
        tree_ns = tree_bitmap_accesses(32).latency_ns()
        assert tree_ns > 5 * chisel_ns

    def test_other_schemes(self):
        assert ebf_accesses().off_chip >= 1
        assert tcam_accesses().on_chip == 1


class TestFPGAModel:
    def test_bram_count_aspects(self):
        assert bram_count(16384, 1) == 1
        assert bram_count(8192, 2) == 1
        assert bram_count(8192, 14) == 7    # 8K x 2 aspect, 7 wide
        assert bram_count(16384, 32) == 32  # 16K x 1 aspect
        assert bram_count(512, 36) == 1

    def test_prototype_fits_device(self):
        estimate = estimate_resources()
        assert estimate.fits(XC2VP100)

    def test_prototype_matches_table2(self):
        """Modelled utilization within 20% of the paper's Table 2 on every
        row (the model's calibration contract)."""
        estimate = estimate_resources()
        modelled = estimate.utilization()
        for name, (paper_used, paper_avail) in PAPER_TABLE2.items():
            used, avail, _fraction = modelled[name]
            assert avail == paper_avail, name
            assert abs(used - paper_used) / paper_used < 0.20, (
                name, used, paper_used
            )

    def test_memory_dominates_logic(self):
        """Table 2's signature: BRAM-heavy, logic-light."""
        estimate = estimate_resources()
        utilization = estimate.utilization()
        assert utilization["Block RAMs"][2] > 0.5
        assert utilization["Total 4-input LUTs"][2] < 0.25

    def test_scaling_with_subcells(self):
        four = estimate_resources(subcells=4)
        eight = estimate_resources(num_prefixes=131_072, subcells=8)
        assert eight.brams > four.brams
        assert eight.luts > four.luts
