"""Tests for the CRC hash family and hash-quality analysis."""

import random

import pytest

from repro.analysis.hash_quality import (
    UniformityReport,
    compare_families,
    occupancy_counts,
    uniformity,
)
from repro.bloomier import BloomierFilter
from repro.hashing.crc import CRCHash
from repro.hashing.tabulation import TabulationHash
from repro.workloads import synthetic_table


def low_bits_family(key_bits, out_bits, rng):
    """A deliberately weak 'hash': take the low output bits."""
    mask = (1 << out_bits) - 1
    return lambda key: key & mask


class TestCRCHash:
    def test_deterministic_and_ranged(self):
        h = CRCHash(32, 12, random.Random(1))
        assert h(0xDEADBEEF) == h(0xDEADBEEF)
        assert all(0 <= h(k) < 4096 for k in range(2000))

    def test_rehash_changes_function(self):
        rng = random.Random(2)
        h = CRCHash(32, 12, rng)
        before = [h(k) for k in range(256)]
        h.rehash(rng)
        assert [h(k) for k in range(256)] != before

    def test_different_rngs_differ(self):
        a = CRCHash(32, 12, random.Random(3))
        b = CRCHash(32, 12, random.Random(4))
        assert any(a(k) != b(k) for k in range(256))

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            CRCHash(0, 8, random.Random(0))

    def test_bloomier_works_with_crc_family(self):
        """The whole collision-free pipeline is hash-family agnostic."""
        rng = random.Random(5)
        keys = rng.sample(range(1 << 32), 2000)
        items = {key: index % 2048 for index, key in enumerate(keys)}
        bf = BloomierFilter(
            capacity=2000, key_bits=32, value_bits=11,
            rng=random.Random(6), hash_family=CRCHash,
        )
        report = bf.setup(items)
        assert report.encoded == 2000
        assert all(bf.lookup(k) == v for k, v in items.items())


class TestUniformity:
    def test_occupancy_counts_total(self):
        counts = occupancy_counts(lambda k: k, range(100), 10)
        assert sum(counts) == 100
        assert counts == [10] * 10

    def test_uniform_hash_passes(self):
        rng = random.Random(7)
        h = TabulationHash(32, 12, rng)
        keys = rng.sample(range(1 << 32), 4000)
        report = uniformity(h, keys, 1024)
        assert report.looks_uniform
        assert abs(report.normalized_statistic) < 4.0

    def test_constant_hash_fails(self):
        report = uniformity(lambda k: 0, range(1000), 64)
        assert not report.looks_uniform
        assert report.max_bucket == 1000

    def test_report_fields(self):
        report = UniformityReport(100, 11, 10.0, 15)
        assert report.degrees_of_freedom == 10

    def test_left_aligned_prefixes_break_weak_hashing(self):
        """The realistic failure: hash the *left-aligned* prefix value (as
        a naive datapath might) and low-bit indexing collapses onto a few
        buckets, while tabulation and CRC stay uniform.  This is why H3
        front-ends matter for LPM hardware."""
        table = synthetic_table(9000, seed=8)
        keys = sorted({
            prefix.network_int() for prefix in table.prefixes()
            if prefix.length == 24
        })
        reports = compare_families(
            {"tabulation": TabulationHash, "crc": CRCHash,
             "low_bits": low_bits_family},
            keys, key_bits=32, num_buckets=2048, seed=9,
        )
        assert reports["tabulation"].looks_uniform
        assert reports["crc"].looks_uniform
        assert not reports["low_bits"].looks_uniform
        assert (reports["low_bits"].max_bucket
                > 10 * reports["tabulation"].max_bucket)
