"""Unit tests for tabulation hashing, Bloom and counting Bloom filters."""

import random

import pytest

from repro.hashing import (
    BloomFilter,
    CountingBloomFilter,
    SegmentedHashGroup,
    TabulationHash,
    make_family,
)


class TestTabulationHash:
    def test_deterministic(self):
        h = TabulationHash(32, 16, random.Random(1))
        assert h(0xDEADBEEF) == h(0xDEADBEEF)

    def test_output_range(self):
        h = TabulationHash(32, 10, random.Random(2))
        assert all(0 <= h(k) < 1024 for k in range(500))

    def test_different_seeds_differ(self):
        a = TabulationHash(32, 16, random.Random(1))
        b = TabulationHash(32, 16, random.Random(2))
        keys = range(100)
        assert any(a(k) != b(k) for k in keys)

    def test_linearity_over_xor_of_bytes(self):
        """Tabulation hashing is XOR-linear per byte: h(a) ^ h(b) ^ h(0) ==
        h(a ^ b) when a and b occupy disjoint bytes — the H3 property."""
        h = TabulationHash(16, 12, random.Random(3))
        a, b = 0x3400, 0x0012  # disjoint bytes
        assert h(a) ^ h(b) ^ h(0) == h(a | b)

    def test_spread_is_reasonable(self):
        h = TabulationHash(32, 8, random.Random(4))
        values = {h(k) for k in range(4096)}
        assert len(values) > 200  # most of the 256 outputs hit

    def test_rehash_changes_function(self):
        rng = random.Random(5)
        h = TabulationHash(32, 16, rng)
        before = [h(k) for k in range(64)]
        h.rehash(rng)
        assert [h(k) for k in range(64)] != before

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TabulationHash(0, 8, random.Random(0))
        with pytest.raises(ValueError):
            TabulationHash(8, 0, random.Random(0))

    def test_make_family_size_and_independence(self):
        family = make_family(3, 32, 16, random.Random(6))
        assert len(family) == 3
        key = 0x12345678
        assert len({h(key) for h in family}) > 1


class TestSegmentedHashGroup:
    def test_locations_in_disjoint_segments(self):
        group = SegmentedHashGroup(3, 100, 32, random.Random(7))
        for key in range(200):
            locations = group.locations(key)
            assert len(locations) == 3
            for index, slot in enumerate(locations):
                assert index * 100 <= slot < (index + 1) * 100

    def test_total_slots(self):
        group = SegmentedHashGroup(4, 64, 32, random.Random(8))
        assert group.total_slots == 256

    def test_locations_distinct(self):
        group = SegmentedHashGroup(3, 10, 32, random.Random(9))
        for key in range(100):
            assert len(set(group.locations(key))) == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SegmentedHashGroup(0, 10, 32, random.Random(0))
        with pytest.raises(ValueError):
            SegmentedHashGroup(2, 0, 32, random.Random(0))


class TestBloomFilter:
    def test_no_false_negatives(self):
        rng = random.Random(10)
        bloom = BloomFilter.for_capacity(500, 32, rng)
        keys = rng.sample(range(1 << 32), 500)
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_bounded(self):
        rng = random.Random(11)
        bloom = BloomFilter.for_capacity(1000, 32, rng, bits_per_key=10)
        members = set(rng.sample(range(1 << 31), 1000))
        for key in members:
            bloom.add(key)
        probes = [k for k in rng.sample(range(1 << 31, 1 << 32), 5000)]
        false_positives = sum(1 for k in probes if k in bloom)
        # ~1% expected at 10 bits/key; allow generous slack.
        assert false_positives / len(probes) < 0.05

    def test_analytic_rate_matches_regime(self):
        rng = random.Random(12)
        bloom = BloomFilter.for_capacity(1000, 32, rng, bits_per_key=10)
        for key in range(1000):
            bloom.add(key)
        assert 1e-4 < bloom.false_positive_rate() < 0.05

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(128, 3, 32, random.Random(13))
        assert 42 not in bloom

    def test_storage_bits(self):
        bloom = BloomFilter(4096, 3, 32, random.Random(14))
        assert bloom.storage_bits() == 4096


class TestCountingBloomFilter:
    def test_add_then_contains(self):
        cbf = CountingBloomFilter(1024, 4, 32, random.Random(15))
        cbf.add(77)
        assert 77 in cbf

    def test_remove_restores_absence(self):
        cbf = CountingBloomFilter(1024, 4, 32, random.Random(16))
        cbf.add(77)
        cbf.remove(77)
        assert 77 not in cbf

    def test_counters_track_load(self):
        cbf = CountingBloomFilter(64, 2, 32, random.Random(17))
        for key in range(100):
            cbf.add(key)
        assert sum(cbf.count(slot) for slot in range(64)) > 0

    def test_min_slot_is_least_loaded(self):
        cbf = CountingBloomFilter(256, 4, 32, random.Random(18))
        for key in range(50):
            cbf.add(key)
        slot, count = cbf.min_slot(12345)
        assert count == min(cbf.count(s) for s in cbf.slots(12345))
        assert slot in cbf.slots(12345)

    def test_min_slot_tie_breaks_left(self):
        cbf = CountingBloomFilter(256, 4, 32, random.Random(19))
        slots = cbf.slots(999)
        slot, count = cbf.min_slot(999)
        assert count == 0
        assert slot == slots[0]  # all zero: leftmost wins

    def test_counter_saturation(self):
        cbf = CountingBloomFilter(1, 1, 32, random.Random(20), counter_bits=2)
        for _ in range(10):
            cbf.add(1)
        assert cbf.count(0) == 3  # saturates at 2**2 - 1

    def test_duplicate_slots_counted_once_per_add(self):
        """A key whose hashes collide must not double-increment a counter."""
        cbf = CountingBloomFilter(2, 4, 32, random.Random(21))
        cbf.add(5)
        assert max(cbf.count(0), cbf.count(1)) <= 1

    def test_storage_bits(self):
        cbf = CountingBloomFilter(1000, 4, 32, random.Random(22), counter_bits=4)
        assert cbf.storage_bits() == 4000
