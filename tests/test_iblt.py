"""Property suite for the IBLT codec (``repro.replicate.iblt``).

Three contracts the reconciliation path leans on:

1. **Roundtrip** — a table sized for its content decodes back to
   exactly the inserted set (and serialize/deserialize is lossless).
2. **Symmetric difference** — for any two sets whose difference fits
   the sizing bound, ``a.subtract(b).decode()`` recovers exactly
   (only-in-a, only-in-b); shared keys cancel regardless of how many.
3. **Pinned failure rate** — at the chosen ``CELL_MULTIPLIER`` the
   peel fails rarely enough that one doubling retry is a sufficient
   fallback policy (measured over a fixed deterministic trial sweep,
   so this pins the multiplier: lowering it fails this test).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replicate.iblt import (
    CELL_MULTIPLIER,
    IBLT,
    IBLTError,
    cells_for,
    fingerprint,
)

#: 64-bit nonzero keys, as produced by ``fingerprint``.
keys = st.integers(min_value=1, max_value=(1 << 64) - 1)


def _peel_with_retry(content_a, content_b, delta, seed=0, retries=6):
    """Decode like the protocol does: on peel failure, double + reseed.

    A single peel can always fail (all of a key's cells can collide),
    so the meaningful property is that the retry ladder converges —
    which is exactly what RECON_RETRY implements on the wire.
    """
    cells = cells_for(max(delta, 1))
    for attempt in range(retries):
        a = IBLT(cells, seed=seed + attempt)
        b = IBLT(cells, seed=seed + attempt)
        a.extend(content_a)
        b.extend(content_b)
        decoded = a.subtract(b).decode()
        if decoded is not None:
            return decoded
        cells *= 2
    return None


@given(st.sets(keys, max_size=60), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_roundtrip_decodes_inserted_set(content, seed):
    decoded = _peel_with_retry(content, set(), len(content), seed=seed)
    assert decoded == (content, set())


@given(st.sets(keys, max_size=200), st.sets(keys, max_size=30),
       st.sets(keys, max_size=30))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_symmetric_difference_up_to_sizing_bound(shared, left, right):
    left -= shared | right
    right -= shared
    delta = len(left) + len(right)
    decoded = _peel_with_retry(shared | left, shared | right, delta)
    assert decoded == (left, right)


@given(st.sets(keys, max_size=50), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_serialize_roundtrip(content, seed):
    table = IBLT(cells_for(max(len(content), 1)), seed=seed)
    table.extend(content)
    blob = table.serialize()
    assert len(blob) == table.serialized_size()
    restored = IBLT.deserialize(blob)
    assert restored.cells == table.cells
    assert restored.hashes == table.hashes
    assert restored.seed == table.seed
    assert restored.serialize() == blob
    # Identical cells → identical decode, even when the peel fails.
    assert restored.decode() == table.decode()


@given(st.sets(keys, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_insert_delete_cancels(content):
    table = IBLT(cells_for(len(content)))
    table.extend(content)
    for key in content:
        table.delete(key)
    assert table.decode() == (set(), set())


def test_subtract_requires_matching_geometry():
    with pytest.raises(IBLTError):
        IBLT(24).subtract(IBLT(48))
    with pytest.raises(IBLTError):
        IBLT(24, seed=1).subtract(IBLT(24, seed=2))


def test_decode_failure_rate_pinned_at_multiplier():
    """At CELL_MULTIPLIER the peel rarely fails; one doubling rescues it.

    The trial sweep is deterministic (seeded), so this is a regression
    pin on the sizing policy, not a flaky statistical test.
    """
    assert CELL_MULTIPLIER >= 1.8  # the documented sizing floor
    trials = 300
    failures = 0
    worst_retries = 0
    rng = random.Random(2006)
    for trial in range(trials):
        delta = rng.randint(1, 40)
        content = {rng.getrandbits(64) | 1 for _ in range(delta)}
        cells = cells_for(len(content))
        retries = 0
        while True:
            table = IBLT(cells, seed=trial + retries)
            table.extend(content)
            decoded = table.decode()
            if decoded is not None:
                assert decoded[0] == content
                break
            retries += 1
            cells *= 2
            assert retries <= 3, f"trial {trial}: no decode in 3 doublings"
        if retries:
            failures += 1
            worst_retries = max(worst_retries, retries)
    # Small deltas sit at the minimum table size where the asymptotic
    # 1.23 threshold does not apply; ~9% first-shot failure is the
    # measured behavior at 1.8x.  The protocol's contract is the pair:
    # first-shot failure stays uncommon AND the doubling-retry ladder
    # (RECON_RETRY) converges within a couple of steps.
    assert failures / trials < 0.12, f"{failures}/{trials} peels failed"
    assert worst_retries <= 2


def test_fingerprint_nonzero_and_sensitive():
    base = fingerprint(("10.0.0.0", 8, "10.8.1.1", "eth0", 7))
    assert base != 0
    assert fingerprint(("10.0.0.0", 8, "10.8.1.1", "eth0", 7)) == base
    assert fingerprint(("10.0.0.0", 8, "10.8.1.1", "eth0", 8)) != base
    assert fingerprint(("10.0.0.0", 8, "10.8.1.1", "eth1", 7)) != base
    # Length-prefixed parts: ("ab","c") must not collide with ("a","bc").
    assert fingerprint(("ab", "c")) != fingerprint(("a", "bc"))


def test_cells_for_scales_with_delta_and_is_k_aligned():
    small = cells_for(10)
    large = cells_for(1000)
    assert small < large
    assert small % 3 == 0 and large % 3 == 0
    assert large >= int(1000 * CELL_MULTIPLIER)
    # Tiny deltas still get the minimum workable table.
    assert cells_for(0) == cells_for(1) > 0
