"""Tests for hardware-image snapshots: update locality, independently
verifying §4.4's 'transfer only the modified portions' claim."""

import pytest

from repro.core import ChiselConfig, ChiselLPM
from repro.core.image import HardwareImage
from repro.prefix import Prefix


@pytest.fixture
def engine(small_table):
    return ChiselLPM.build(small_table, ChiselConfig(seed=81))


class TestSnapshot:
    def test_snapshot_is_deep(self, engine):
        image = HardwareImage.snapshot(engine)
        before = image.total_words()
        engine.announce(Prefix.from_string("203.0.113.0/24"), 5)
        # The old snapshot must be unaffected by engine mutation.
        assert image.total_words() == before
        assert HardwareImage.snapshot(engine).diff(image).word_count == \
            image.diff(HardwareImage.snapshot(engine)).word_count

    def test_identical_snapshots_empty_diff(self, engine):
        a = HardwareImage.snapshot(engine)
        b = HardwareImage.snapshot(engine)
        assert a.diff(b).word_count == 0

    def test_table_names_cover_all_structures(self, engine):
        names = HardwareImage.snapshot(engine).table_names()
        kinds = {name.split("/")[1].rstrip("0123456789") for name in names}
        assert kinds == {
            "index", "filter", "dirty", "bitvector", "regionptr",
            "result", "spillover_key", "spillover_value",
        }

    def test_spillover_key_corruption_diffs(self, engine):
        """A flipped TCAM *key* must show up in the diff, not vanish.

        The old snapshot format stored only values sorted by key, so a
        key flip (same value set) diffed as 'no change'."""
        image = HardwareImage.snapshot(engine)
        target = next(
            cell for cell in engine.subcells
        )
        # Simulate a TCAM soft error directly on the hardware entries.
        target.index.spillover._entries[0xDEAD] = 7
        after = HardwareImage.snapshot(engine)
        delta = image.diff(after)
        assert any("spillover_key" in name for name, _ in delta.writes)

    def test_checksums_round_trip(self, engine):
        image = HardwareImage.snapshot(engine)
        sums = image.checksums()
        assert image.verify(sums) == {}
        name = next(n for n, words in image.tables.items() if words)
        image.tables[name][0] ^= 1
        suspects = image.verify(sums)
        assert name in suspects and suspects[name] == [0]


class TestDeletions:
    def test_shrunk_table_words_are_deletions_not_zero_writes(self):
        old = HardwareImage({"t/result": [5, 0, 7]})
        new = HardwareImage({"t/result": [5]})
        delta = old.diff(new)
        # Address 1 held a literal 0 and address 2 held 7; both are gone.
        assert set(delta.deletions) == {("t/result", 1), ("t/result", 2)}
        assert delta.writes == {}
        assert delta.word_count == 2
        assert delta.tables_shrunk() == {"t/result": 2}
        assert delta.tables_touched() == {}

    def test_zero_write_distinguishable_from_deletion(self):
        old = HardwareImage({"t/result": [5, 7]})
        new = HardwareImage({"t/result": [5, 0]})
        delta = old.diff(new)
        assert delta.writes == {("t/result", 1): 0}
        assert delta.deletions == []

    def test_vanished_table_is_all_deletions(self):
        old = HardwareImage({"t/spillover_key": [3, 9]})
        new = HardwareImage({})
        delta = old.diff(new)
        assert set(delta.deletions) == {
            ("t/spillover_key", 0), ("t/spillover_key", 1)
        }


class TestUpdateLocality:
    def diff_for(self, engine, mutate):
        before = HardwareImage.snapshot(engine)
        mutate()
        return before.diff(HardwareImage.snapshot(engine))

    def test_next_hop_change_touches_result_only(self, engine, small_table):
        prefix, _next_hop = next(iter(small_table))
        delta = self.diff_for(engine, lambda: engine.announce(prefix, 251))
        touched = delta.tables_touched()
        assert delta.word_count <= 4
        assert all("result" in name for name in touched), touched

    def test_withdraw_emptying_bucket_touches_dirty_bit(self, engine):
        # A fresh singleton route: withdraw empties its bucket.
        prefix = Prefix.from_string("198.51.100.0/24")
        engine.announce(prefix, 9)
        delta = self.diff_for(engine, lambda: engine.withdraw(prefix))
        touched = delta.tables_touched()
        assert delta.word_count == 1
        assert list(touched) == [next(iter(touched))]
        assert "dirty" in next(iter(touched))

    def test_route_flap_touches_dirty_and_maybe_region(self, engine):
        prefix = Prefix.from_string("198.51.100.0/24")
        engine.announce(prefix, 9)
        engine.withdraw(prefix)
        delta = self.diff_for(engine, lambda: engine.announce(prefix, 9))
        # Restoring a flap is a ~1-word write (the dirty bit), plus at most
        # a region refresh.
        assert delta.word_count <= 3

    def test_add_pc_is_local(self, engine, small_table):
        # Add a sibling of an existing route: same bucket, so only that
        # bucket's bit-vector/region words change.
        parent = next(p for p, _nh in small_table if 2 <= p.length <= 30)
        sibling = Prefix(parent.value ^ 1, parent.length, 32)
        if engine.get_route(sibling) is not None:
            pytest.skip("sibling already present for this seed")
        delta = self.diff_for(engine, lambda: engine.announce(sibling, 77))
        assert delta.word_count <= 24  # one bucket's worth of words

    def test_singleton_insert_touches_one_index_word(self, engine):
        prefix = Prefix.from_string("100.64.7.0/24")
        before = HardwareImage.snapshot(engine)
        kind = engine.announce(prefix, 3)
        delta = before.diff(HardwareImage.snapshot(engine))
        index_words = sum(
            count for name, count in delta.tables_touched().items()
            if "index" in name
        )
        if kind.name == "SINGLETON":
            assert index_words == 1
        # Filter + bit-vector + region pointer + region contents also land.
        assert delta.word_count <= 8

    def test_resetup_bounded_by_group(self, medium_table):
        """Even a forced re-setup rewrites at most ~one group's words, not
        the whole Index Table — the §4.4.2 bounded-update claim at the
        hardware-word level."""
        engine = ChiselLPM.build(medium_table, ChiselConfig(seed=82))
        total_index_words = sum(
            subcell.index.total_slots for subcell in engine.subcells
        )
        before = HardwareImage.snapshot(engine)
        # Hunt for an announce that needs a rebuild.
        import random
        rng = random.Random(83)
        for _ in range(4000):
            length = rng.choice((20, 24))
            prefix = Prefix(rng.getrandbits(length), length, 32)
            if engine.get_route(prefix) is not None:
                continue
            if engine.announce(prefix, 1).name == "RESETUP":
                break
            before = HardwareImage.snapshot(engine)
        else:
            pytest.skip("no rebuild occurred at this scale/seed")
        delta = before.diff(HardwareImage.snapshot(engine))
        index_words = sum(
            count for name, count in delta.tables_touched().items()
            if "index" in name
        )
        assert index_words < total_index_words / 4
