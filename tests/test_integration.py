"""Integration tests: full build -> update storm -> purge -> verify cycles,
cross-scheme agreement at scale, and failure-injection scenarios."""

import random

import pytest

from repro.baselines import BinaryTrie, EBFCPELpm, TCAM, TreeBitmap
from repro.core import (
    ANNOUNCE,
    WITHDRAW,
    ChiselConfig,
    ChiselLPM,
    UpdateKind,
    apply_trace,
)
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthesize_trace, synthetic_table

from .conftest import sample_keys


class TestAllSchemesAgree:
    """Every LPM implementation must return identical answers."""

    def test_four_way_agreement(self, medium_table, rng):
        engines = {
            "chisel": ChiselLPM.build(medium_table, ChiselConfig(seed=31)),
            "trie": BinaryTrie.from_table(medium_table),
            "tree_bitmap": TreeBitmap.from_table(medium_table),
            "tcam": TCAM.from_table(medium_table),
            "ebf_cpe": EBFCPELpm.build(medium_table, seed=31),
        }
        for key in sample_keys(medium_table, rng, 400):
            answers = {name: engine.lookup(key) for name, engine in engines.items()}
            assert len(set(answers.values())) == 1, (hex(key), answers)


class TestUpdateLifecycle:
    def test_storm_then_purge_then_verify(self, medium_table, rng):
        """A long churn trace, periodic purges, final full verification."""
        engine = ChiselLPM.build(medium_table, ChiselConfig(seed=33))
        reference = RoutingTable(width=32)
        for prefix, next_hop in medium_table:
            reference.add(prefix, next_hop)

        trace = synthesize_trace(medium_table, 6000, seed=34)
        for index, update in enumerate(trace):
            if update.op == ANNOUNCE:
                engine.announce(update.prefix, update.next_hop)
                reference.add(update.prefix, update.next_hop)
            else:
                engine.withdraw(update.prefix)
                reference.remove(update.prefix)
            if index % 2000 == 1999:
                engine.purge_dirty()

        assert len(engine) == len(reference)
        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 1000):
            assert engine.lookup(key) == oracle.lookup(key), hex(key)

    def test_withdraw_everything_then_rebuild(self, small_table):
        """Empty the engine completely, then repopulate it."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=35))
        for prefix, _next_hop in small_table:
            engine.withdraw(prefix)
        assert len(engine) == 0
        probe = next(iter(small_table.prefixes())).network_int()
        assert engine.lookup(probe) is None
        engine.purge_dirty()
        for prefix, next_hop in small_table:
            engine.announce(prefix, next_hop)
        assert len(engine) == len(small_table)
        oracle = BinaryTrie.from_table(small_table)
        assert engine.lookup(probe) == oracle.lookup(probe)

    def test_flap_storm(self, small_table):
        """Withdraw/announce the same routes repeatedly: flaps must be
        absorbed by dirty bits without index-table rebuilds."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=36))
        victims = [p for p, _nh in list(small_table)[:200]]
        next_hops = {p: small_table.next_hop(p) for p in victims}
        flap_kinds = []
        for _round in range(3):
            for prefix in victims:
                engine.withdraw(prefix)
            for prefix in victims:
                flap_kinds.append(engine.announce(prefix, next_hops[prefix]))
        assert UpdateKind.RESETUP not in flap_kinds
        assert UpdateKind.SINGLETON not in flap_kinds
        assert len(engine) == len(small_table)

    def test_growth_under_sustained_adds(self, rng):
        """Keep announcing new routes until sub-cells must grow; the engine
        stays correct throughout."""
        table = synthetic_table(500, seed=40)
        engine = ChiselLPM.build(table, ChiselConfig(seed=41))
        reference = RoutingTable(width=32)
        for prefix, next_hop in table:
            reference.add(prefix, next_hop)
        for index in range(3000):
            length = rng.choice((16, 20, 24))
            prefix = Prefix(rng.getrandbits(length), length, 32)
            engine.announce(prefix, index % 200 + 1)
            reference.add(prefix, index % 200 + 1)
        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 500):
            assert engine.lookup(key) == oracle.lookup(key)


class TestFailureInjection:
    def test_adversarial_duplicate_neighborhoods_spill(self):
        """Force a 2-core by duplicating hash neighborhoods: the spillover
        TCAM must absorb the stragglers and lookups stay exact."""
        from repro.bloomier import PartitionedBloomierFilter

        rng = random.Random(0)
        pbf = PartitionedBloomierFilter(
            capacity=16, key_bits=32, value_bits=8, partitions=1,
            rng=rng, max_rehash=0, spill_capacity=32,
        )
        # Tiny group: heavy load makes stalls likely even at m/n = 3.
        items = {k: k % 256 for k in range(1, 17)}
        report = pbf.setup(items)
        for key, value in items.items():
            assert pbf.lookup(key) == value
        assert len(report.spilled) == len(pbf.spillover)

    def test_lookup_never_wrong_only_missing(self, small_table, rng):
        """Zero false positives: for keys matching no stored prefix, the
        engine must answer None, never a fabricated next hop."""
        empty_space = RoutingTable(width=32)
        empty_space.add(Prefix.from_string("11.0.0.0/8"), 1)
        engine = ChiselLPM.build(empty_space, ChiselConfig(seed=42))
        for _ in range(5000):
            key = rng.getrandbits(32)
            result = engine.lookup(key)
            if (key >> 24) != 11:
                assert result is None
            else:
                assert result == 1

    def test_duplicate_announce_idempotent(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=43))
        prefix = Prefix.from_string("203.0.113.0/24")
        engine.announce(prefix, 5)
        before = len(engine)
        engine.announce(prefix, 5)
        assert len(engine) == before

    def test_withdraw_absent_idempotent(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=44))
        prefix = Prefix.from_string("203.0.113.0/24")
        assert engine.withdraw(prefix) is None
        assert engine.withdraw(prefix) is None
        assert len(engine) == len(small_table)
