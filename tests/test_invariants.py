"""Structural invariant verifier: clean engines pass, corruptions are caught.

The three hand-corrupted images mirror the bug classes the paper's
construction is supposed to exclude:

* a flipped Index Table word (the XOR encoding no longer decodes the
  programmed pointer — collision-freeness broken, §4.2);
* an orphaned bit-vector bit (a set bit with no covering original route,
  §4.3.1);
* a double-allocated Result Table region (two buckets own the same
  off-chip slots, §4.4.2).
"""

import json
import pickle

import pytest

from repro.core import ChiselLPM, apply_trace
from repro.devtools.invariants import (
    InvariantReport,
    verify_engine,
)
from repro.workloads.synthetic import synthetic_table
from repro.workloads.traces import synthesize_trace


@pytest.fixture(scope="module")
def table():
    return synthetic_table(400, seed=3, name="inv")


@pytest.fixture(scope="module")
def engine_blob(table):
    """A built engine, pickled so each test can corrupt a private copy."""
    return pickle.dumps(ChiselLPM.build(table))


@pytest.fixture
def engine(engine_blob):
    return pickle.loads(engine_blob)


def some_subcell(engine):
    return next(s for s in engine.subcells if s.buckets)


# ---------------------------------------------------------------------------
# clean images pass
# ---------------------------------------------------------------------------

def test_fresh_engine_verifies_clean(engine):
    report = verify_engine(engine)
    assert report.ok, report.format()
    assert report.count("keys_decoded") == engine.collapsed_key_count()
    assert report.count("subcells") == len(engine.subcells)
    assert report.count("groups_checked") > 0
    assert "invariants OK" in report.summary()


def test_engine_verifies_clean_after_churn_and_maintenance(engine, table):
    trace = synthesize_trace(table, 2000, seed=9)
    apply_trace(engine, trace)
    assert verify_engine(engine).ok
    engine.maintenance()
    report = verify_engine(engine)
    assert report.ok, report.format()


# ---------------------------------------------------------------------------
# corruption 1: flipped Index Table entry -> INV101 (and INV401)
# ---------------------------------------------------------------------------

def test_flipped_index_table_entry_breaks_collision_freeness(engine):
    subcell = some_subcell(engine)
    group = next(g for g in subcell.index.groups if g.shadow)
    key = next(iter(group.shadow))
    slot = group.neighborhood(key)[0]
    group._table[slot] ^= 1
    report = verify_engine(engine)
    assert not report.ok
    assert "INV101" in report.codes()  # decoded pointer no longer matches
    assert "INV401" in report.codes()  # XOR decode disagrees with shadow
    assert any("collision-freeness" in v.message for v in report.violations)


# ---------------------------------------------------------------------------
# corruption 2: orphaned bit-vector bit -> INV201
# ---------------------------------------------------------------------------

def corrupt_one_bitvector(engine):
    for subcell in engine.subcells:
        full = (1 << (1 << subcell.span)) - 1
        for bucket in subcell.buckets.values():
            if bucket.dirty:
                continue
            vector = subcell.bv_table[bucket.pointer]
            if vector == full:
                continue
            zero = next(
                e for e in range(1 << subcell.span) if not (vector >> e) & 1
            )
            subcell.bv_table[bucket.pointer] |= 1 << zero
            return subcell.base
    raise AssertionError("no corruptible bucket found")


def test_orphaned_bitvector_bit_is_caught(engine):
    base = corrupt_one_bitvector(engine)
    report = verify_engine(engine)
    assert not report.ok
    assert report.codes() == ["INV201"]
    assert any(
        "orphaned bits" in v.message and v.subcell == base
        for v in report.violations
    )


# ---------------------------------------------------------------------------
# corruption 3: double-allocated Result Table region -> INV301
# ---------------------------------------------------------------------------

def test_double_allocated_region_is_caught(engine):
    subcell = next(s for s in engine.subcells if len(s.buckets) >= 2)
    first, second = list(subcell.buckets.values())[:2]
    subcell.region_ptr[second.pointer] = subcell.region_ptr[first.pointer]
    report = verify_engine(engine)
    assert not report.ok
    assert "INV301" in report.codes()
    assert any("doubly-owned" in v.message or "overlaps" in v.message
               for v in report.violations)


def test_leaked_region_slots_are_caught(engine):
    # An allocation no bucket (and no free list) owns: leaked arena slots.
    subcell = some_subcell(engine)
    subcell.result.allocate(4)
    report = verify_engine(engine)
    assert "INV301" in report.codes()
    assert any("leaked" in v.message for v in report.violations)


# ---------------------------------------------------------------------------
# further structural drift is caught, not just the three canonical images
# ---------------------------------------------------------------------------

def test_refcount_drift_is_caught(engine):
    subcell = some_subcell(engine)
    group = next(g for g in subcell.index.groups if g.shadow)
    group._refcount[0] += 1
    report = verify_engine(engine)
    assert "INV401" in report.codes()


def test_stale_filter_table_key_is_caught(engine):
    subcell = some_subcell(engine)
    bucket = next(iter(subcell.buckets.values()))
    subcell.filter_table[bucket.pointer] ^= 1
    report = verify_engine(engine)
    assert "INV101" in report.codes()


def test_report_format_lists_violations():
    report = InvariantReport()
    report.add("INV201", "bad vector", subcell=24)
    text = report.format()
    assert "[INV201] sub-cell /24: bad vector" in text
    assert "1 invariant violation(s)" in text


# ---------------------------------------------------------------------------
# CLI integration: exit codes over checkpointed images
# ---------------------------------------------------------------------------

def save(engine, path):
    engine.save(str(path))
    return str(path)


def test_cli_clean_engine_exits_zero(engine, tmp_path, capsys):
    from repro.cli import main

    assert main(["check", "--invariants",
                 "--engine", save(engine, tmp_path / "ok.pkl")]) == 0
    assert "invariants OK" in capsys.readouterr().out


def test_cli_corrupted_images_exit_nonzero(engine_blob, tmp_path, capsys):
    from repro.cli import main

    # flipped index-table entry
    engine = pickle.loads(engine_blob)
    subcell = some_subcell(engine)
    group = next(g for g in subcell.index.groups if g.shadow)
    group._table[group.neighborhood(next(iter(group.shadow)))[0]] ^= 1
    assert main(["check", "--invariants",
                 "--engine", save(engine, tmp_path / "flip.pkl")]) == 1
    assert "INV101" in capsys.readouterr().out

    # orphaned bit-vector bit
    engine = pickle.loads(engine_blob)
    corrupt_one_bitvector(engine)
    assert main(["check", "--invariants",
                 "--engine", save(engine, tmp_path / "orphan.pkl")]) == 1
    assert "INV201" in capsys.readouterr().out

    # double-allocated region slot
    engine = pickle.loads(engine_blob)
    subcell = next(s for s in engine.subcells if len(s.buckets) >= 2)
    first, second = list(subcell.buckets.values())[:2]
    subcell.region_ptr[second.pointer] = subcell.region_ptr[first.pointer]
    assert main(["check", "--invariants",
                 "--engine", save(engine, tmp_path / "double.pkl")]) == 1
    assert "INV301" in capsys.readouterr().out


def test_cli_invariants_json(engine, tmp_path, capsys):
    from repro.cli import main

    corrupt_one_bitvector(engine)
    assert main(["check", "--invariants", "--json",
                 "--engine", save(engine, tmp_path / "bad.pkl")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["invariants"]["ok"] is False
    assert "INV201" in payload["invariants"]["codes"]
    assert payload["invariants"]["checked"]["subcells"] >= 1


def test_cli_synthetic_build_verifies(capsys):
    from repro.cli import main

    assert main(["check", "--invariants", "--size", "300"]) == 0
    assert "invariants OK" in capsys.readouterr().out
