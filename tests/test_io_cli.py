"""Tests for the table/trace file formats and the CLI."""

import pytest

from repro.cli import main
from repro.core import ANNOUNCE, WITHDRAW, UpdateOp
from repro.prefix import Prefix, RoutingTable
from repro.workloads import synthesize_trace, synthetic_table
from repro.workloads.io import (
    TableFormatError,
    load_table,
    load_trace,
    parse_table,
    parse_trace,
    save_table,
    save_trace,
)


class TestTableIO:
    def test_roundtrip(self, tmp_path, small_table):
        path = tmp_path / "t.tbl"
        save_table(small_table, path)
        loaded = load_table(path)
        assert loaded.width == small_table.width
        assert dict(iter(loaded)) == dict(iter(small_table))

    def test_ipv6_roundtrip(self, tmp_path):
        from repro.workloads import ipv6_table

        table = ipv6_table(100, seed=1)
        path = tmp_path / "v6.tbl"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.width == 128
        assert len(loaded) == 100

    def test_parse_comments_and_blanks(self):
        table = parse_table([
            "# width: 32",
            "",
            "# comment",
            "10.0.0.0/8 7",
        ])
        assert len(table) == 1
        assert table.next_hop(Prefix.from_string("10.0.0.0/8")) == 7

    def test_width_inferred_without_header(self):
        table = parse_table(["2001:db8::/32 1"])
        assert table.width == 128

    def test_malformed_line_raises_with_number(self):
        with pytest.raises(TableFormatError) as info:
            parse_table(["10.0.0.0/8 1", "garbage line here"])
        assert info.value.line_number == 2

    def test_bad_next_hop(self):
        with pytest.raises(TableFormatError):
            parse_table(["10.0.0.0/8 seven"])


class TestTraceIO:
    def test_roundtrip(self, tmp_path, small_table):
        trace = synthesize_trace(small_table, 300, seed=2)
        path = tmp_path / "t.upd"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_parse_mixed(self):
        trace = parse_trace([
            "announce 10.0.0.0/8 5",
            "# churn",
            "withdraw 10.0.0.0/8",
        ])
        assert trace == [
            UpdateOp(ANNOUNCE, Prefix.from_string("10.0.0.0/8"), 5),
            UpdateOp(WITHDRAW, Prefix.from_string("10.0.0.0/8")),
        ]

    def test_malformed_trace_line(self):
        with pytest.raises(TableFormatError):
            parse_trace(["announce 10.0.0.0/8"])  # missing next hop
        with pytest.raises(TableFormatError):
            parse_trace(["replace 10.0.0.0/8 1"])


class TestCLI:
    @pytest.fixture
    def table_file(self, tmp_path):
        path = tmp_path / "t.tbl"
        save_table(synthetic_table(800, seed=3), path)
        return str(path)

    def test_generate_table(self, tmp_path, capsys):
        out = tmp_path / "gen.tbl"
        assert main(["generate-table", "--size", "500", "-o", str(out)]) == 0
        assert len(load_table(out)) == 500
        assert "500 routes" in capsys.readouterr().out

    def test_generate_table_ipv6(self, tmp_path):
        out = tmp_path / "v6.tbl"
        main(["generate-table", "--size", "200", "--ipv6", "-o", str(out)])
        assert load_table(out).width == 128

    def test_generate_trace(self, tmp_path, table_file):
        out = tmp_path / "t.upd"
        assert main(["generate-trace", "--table", table_file,
                     "--updates", "250", "-o", str(out)]) == 0
        assert len(load_trace(out)) == 250

    def test_build(self, table_file, capsys):
        assert main(["build", "--table", table_file]) == 0
        output = capsys.readouterr().out
        assert "collapsed keys" in output
        assert "total on-chip KB" in output

    def test_lookup(self, table_file, capsys):
        assert main(["lookup", "--table", table_file,
                     "10.1.2.3", "255.255.255.255"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") == 2

    def test_run_trace(self, tmp_path, table_file, capsys):
        trace_path = tmp_path / "t.upd"
        main(["generate-trace", "--table", table_file,
              "--updates", "400", "-o", str(trace_path)])
        assert main(["run-trace", "--table", table_file,
                     "--trace", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "incremental fraction" in output

    def test_simulate(self, table_file, capsys):
        assert main(["simulate", "--table", table_file,
                     "--lookups", "300"]) == 0
        output = capsys.readouterr().out
        assert "sustained Msps" in output

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
