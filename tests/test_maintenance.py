"""Tests for maintenance paths: spillover drain, Result Table compaction,
and the engine-wide maintenance pass."""

import random

import pytest

from repro.baselines import BinaryTrie
from repro.bloomier import BloomierFilter, PartitionedBloomierFilter
from repro.core import ChiselConfig, ChiselLPM
from repro.core.alloc import BlockAllocator
from repro.prefix import Prefix, RoutingTable

from .conftest import sample_keys


class TestSpilloverDrain:
    def _pressured_filter(self):
        """A tiny, tight filter that is forced to spill at setup."""
        rng = random.Random(16)  # seed chosen so this setup does spill
        pbf = PartitionedBloomierFilter(
            capacity=16, key_bits=32, value_bits=8, partitions=1,
            rng=rng, max_rehash=0, spill_capacity=32,
        )
        items = {k * 2654435761 % (1 << 32): k % 256 for k in range(1, 17)}
        report = pbf.setup(items)
        return pbf, items, report

    def test_drain_after_deletions(self):
        pbf, items, report = self._pressured_filter()
        if not report.spilled:
            pytest.skip("this seed did not spill")
        # Delete half the encoded keys: slots free up.
        encoded = [k for k in items if k not in report.spilled]
        for key in encoded[: len(encoded) // 2]:
            pbf.delete(key)
        # NOTE: delete() rebuilds the group, which already re-attempts
        # spilled keys; drain covers the try_insert path for any leftovers.
        drained = pbf.drain_spillover()
        assert drained >= 0
        # All surviving keys still resolve exactly.
        for key, value in items.items():
            if key in pbf:
                assert pbf.lookup(key) == value

    def test_drain_noop_when_empty(self):
        rng = random.Random(4)
        pbf = PartitionedBloomierFilter(
            capacity=100, key_bits=32, value_bits=8, partitions=2, rng=rng,
        )
        pbf.setup({k: k % 256 for k in range(1, 50)})
        assert pbf.drain_spillover() == 0


class TestAllocatorCompaction:
    def test_compact_packs_live_blocks(self):
        alloc = BlockAllocator()
        a = alloc.allocate(4)
        b = alloc.allocate(4)
        c = alloc.allocate(4)
        alloc.write_block(a, [1, 2, 3, 4])
        alloc.write_block(c, [9, 8, 7, 6])
        alloc.free(b, 4)
        relocation = alloc.compact({a: 4, c: 4})
        assert len(alloc.arena) == 8
        assert alloc.read_block(relocation[a], 4) == [1, 2, 3, 4]
        assert alloc.read_block(relocation[c], 4) == [9, 8, 7, 6]

    def test_compact_empty(self):
        alloc = BlockAllocator()
        pointer = alloc.allocate(8)
        alloc.free(pointer, 8)
        assert alloc.compact({}) == {}
        assert alloc.arena == []

    def test_compact_preserves_order_independent_content(self):
        alloc = BlockAllocator()
        blocks = {}
        for index in range(10):
            pointer = alloc.allocate(2)
            alloc.write_block(pointer, [index, index + 100])
            blocks[pointer] = 2
        # Free every other block.
        survivors = {}
        for position, (pointer, size) in enumerate(sorted(blocks.items())):
            if position % 2:
                alloc.free(pointer, size)
            else:
                survivors[pointer] = size
        relocation = alloc.compact(survivors)
        for old in survivors:
            original = old // 2
            assert alloc.read_block(relocation[old], 2) == [original, original + 100]


class TestEngineMaintenance:
    def test_maintenance_reclaims_and_stays_correct(self, medium_table, rng):
        engine = ChiselLPM.build(medium_table, ChiselConfig(seed=70))
        reference = RoutingTable(width=32)
        for prefix, next_hop in medium_table:
            reference.add(prefix, next_hop)
        # Churn: withdraw a third, grow some regions, withdraw more.
        victims = [p for p, _nh in list(medium_table)[::3]]
        for victim in victims:
            engine.withdraw(victim)
            reference.remove(victim)
        for index in range(300):
            prefix = Prefix(rng.getrandbits(24), 24, 32)
            engine.announce(prefix, index % 100 + 1)
            reference.add(prefix, index % 100 + 1)

        summary = engine.maintenance()
        assert summary["purged"] > 0
        assert summary["result_entries_reclaimed"] >= 0
        assert engine.dirty_count() == 0

        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 800):
            assert engine.lookup(key) == oracle.lookup(key), hex(key)

    def test_compaction_reduces_arena_after_churn(self, small_table, rng):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=71))
        # Force region reallocation churn: add/remove more-specifics.
        parents = [p for p, _nh in list(small_table) if p.length <= 22][:100]
        for round_index in range(3):
            added = []
            for parent in parents:
                child = Prefix(
                    (parent.value << 2) | (round_index % 4),
                    parent.length + 2, 32,
                )
                engine.announce(child, 7)
                added.append(child)
            for child in added:
                engine.withdraw(child)
        before = sum(len(cell.result.arena) for cell in engine.subcells)
        engine.maintenance()
        after = sum(len(cell.result.arena) for cell in engine.subcells)
        assert after <= before

    def test_maintenance_idempotent(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=72))
        first = engine.maintenance()
        second = engine.maintenance()
        assert second["purged"] == 0
        assert second["result_entries_reclaimed"] == 0
