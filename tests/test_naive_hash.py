"""Unit tests for the naïve per-length chained-hash LPM baseline."""

import random

import pytest

from repro.baselines import BinaryTrie, NaiveHashLPM
from repro.baselines.naive_hash import ChainedHashTable

from .conftest import sample_keys


class TestChainedHashTable:
    def test_insert_lookup(self):
        table = ChainedHashTable(16, 24, random.Random(0))
        table.insert(0xABCDEF, 7)
        value, probes = table.lookup(0xABCDEF)
        assert value == 7 and probes >= 1

    def test_insert_overwrites(self):
        table = ChainedHashTable(16, 24, random.Random(0))
        table.insert(5, 1)
        table.insert(5, 2)
        assert len(table) == 1
        assert table.lookup(5)[0] == 2

    def test_remove(self):
        table = ChainedHashTable(16, 24, random.Random(0))
        table.insert(5, 1)
        assert table.remove(5) == 1
        assert table.lookup(5)[0] is None
        assert table.remove(5) is None

    def test_chains_form_under_load(self):
        """Overloading a tiny table must produce multi-entry chains — the
        unpredictability the paper's §1 objection is about."""
        table = ChainedHashTable(4, 32, random.Random(1))
        for key in range(64):
            table.insert(key * 2654435761 % (1 << 32), key)
        assert table.max_chain() > 1
        histogram = table.chain_histogram()
        assert sum(histogram.values()) == 4

    def test_probe_count_reflects_chain(self):
        table = ChainedHashTable(1, 32, random.Random(2))
        for key in range(10):
            table.insert(key, key)
        _value, probes = table.lookup(9)
        assert probes == 10


class TestNaiveHashLPM:
    def test_equivalence_with_oracle(self, small_table, rng):
        lpm = NaiveHashLPM.build(small_table, seed=3)
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 800):
            assert lpm.lookup(key) == oracle.lookup(key)

    def test_one_table_per_populated_length(self, small_table):
        lpm = NaiveHashLPM.build(small_table)
        assert lpm.table_count() == len(small_table.stats().populated_lengths)

    def test_probe_counts_grow_with_lengths(self, small_table, rng):
        """Every populated length may be probed: the many-tables problem."""
        lpm = NaiveHashLPM.build(small_table)
        misses = [k for k in (rng.getrandbits(32) for _ in range(50))]
        worst = max(lpm.lookup_with_probes(k)[1] for k in misses)
        assert worst >= lpm.table_count()

    def test_insert_creates_table_on_demand(self, small_table):
        from repro.prefix import Prefix

        lpm = NaiveHashLPM.build(small_table)
        before = lpm.table_count()
        lpm.insert(Prefix(0b1, 1, 32), 9)
        assert lpm.table_count() == before + 1

    def test_remove(self, small_table):
        lpm = NaiveHashLPM.build(small_table)
        prefix, next_hop = next(iter(small_table))
        assert lpm.remove(prefix) == next_hop
        assert lpm.remove(prefix) is None

    def test_worst_chain_reported(self, small_table):
        lpm = NaiveHashLPM.build(small_table, load_factor=8.0)
        assert lpm.worst_chain() >= 1
