"""Unit tests for the observability layer (``repro.obs``).

The registry is the tentpole of this PR: every instrumented layer binds
its handles here, the CLI exporters read from here, and the CI overhead
gate assumes the no-op mode really is a no-op.  These tests pin the
contract: creation-is-binding, kind safety, quantile semantics, both
exporter formats, collector retirement, and pickle re-binding.
"""

import math
import pickle

import pytest

from repro.obs import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceRing,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True, trace_capacity=8)


class TestPrimitives:
    def test_counter_inc_and_reset(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        counter.reset()
        assert counter.value == 0

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 11

    def test_histogram_bucket_placement(self):
        hist = Histogram("lat", (1, 5, 10))
        for value in (0.5, 1, 3, 10, 99):
            hist.observe(value)
        # le-semantics: 1 lands in the le=1 bucket, 99 in overflow.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(113.5)
        assert hist.buckets() == [(1, 2), (5, 3), (10, 4), (math.inf, 5)]

    def test_histogram_quantile_is_bucket_upper_bound(self):
        hist = Histogram("lat", (1, 5, 10))
        for value in (0.2,) * 50 + (4,) * 45 + (7,) * 4 + (100,):
            hist.observe(value)
        assert hist.quantile(0.5) == 1
        assert hist.quantile(0.9) == 5
        assert hist.quantile(0.99) == 10
        assert hist.quantile(1.0) == math.inf  # overflow bucket
        assert hist.quantile(0.0) == 1
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram("lat", (1,)).quantile(0.99) == 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", ())
        with pytest.raises(ValueError):
            Histogram("lat", (5, 1))
        with pytest.raises(ValueError):
            Histogram("lat", (1, 1))

    def test_default_bucket_families_are_increasing(self):
        for bounds in (LATENCY_BUCKETS, DEPTH_BUCKETS):
            assert list(bounds) == sorted(set(bounds))


class TestNullMode:
    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c", (1, 2)) is NULL_HISTOGRAM
        # Nothing is recorded, nothing is registered.
        registry.counter("a").inc()
        registry.histogram("c", (1, 2)).observe(1.0)
        registry.trace("grow", base=0)
        assert registry.names() == []
        assert len(registry.traces) == 0

    def test_null_metrics_absorb_all_mutations(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.quantile(0.99) == 0.0

    def test_enable_is_a_binding_time_decision(self, registry):
        registry.enabled = False
        off_handle = registry.counter("hits")
        registry.enabled = True
        on_handle = registry.counter("hits")
        off_handle.inc()
        on_handle.inc()
        assert registry.value("hits") == 1  # off_handle stayed a no-op


class TestRegistry:
    def test_handles_are_shared_by_name(self, registry):
        first = registry.counter("hits")
        second = registry.counter("hits")
        assert first is second
        first.inc()
        assert registry.value("hits") == 1

    def test_kind_mismatch_raises(self, registry):
        registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")

    def test_histogram_bounds_mismatch_raises(self, registry):
        registry.histogram("lat", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("lat", (1, 2, 3))

    def test_reset_zeroes_but_keeps_bindings(self, registry):
        counter = registry.counter("hits")
        counter.inc(3)
        registry.trace("grow")
        registry.reset()
        assert registry.value("hits") == 0
        assert len(registry.traces) == 0
        counter.inc()  # the old handle still reports
        assert registry.value("hits") == 1

    def test_trace_ring_bounds_and_sequences(self):
        ring = TraceRing(capacity=3)
        for index in range(5):
            ring.append("event", {"index": index})
        events = ring.events()
        assert len(events) == 3
        assert [event["index"] for event in events] == [2, 3, 4]
        assert [event["seq"] for event in events] == [3, 4, 5]

    def test_collector_publishes_and_retires(self, registry):
        calls = []

        def collector(reg):
            calls.append(True)
            reg.gauge("live_value").set(len(calls))
            return len(calls) < 2  # False on the second run: retire

        registry.register_collector(collector)
        registry.to_dict()
        registry.to_dict()
        registry.to_dict()  # collector already dropped
        assert len(calls) == 2


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("hits", "lookup hits").inc(7)
        registry.gauge("occupancy").set(3.5)
        hist = registry.histogram("lat", (1, 5), "latency")
        hist.observe(0.5)
        hist.observe(99)
        registry.trace("grow", base=0)
        return registry

    def test_to_dict_snapshot(self):
        payload = self._populated().to_dict()
        assert payload["enabled"] is True
        assert payload["counters"]["hits"] == 7
        assert payload["gauges"]["occupancy"] == 3.5
        lat = payload["histograms"]["lat"]
        assert lat["count"] == 2
        assert lat["p50"] == 1
        assert lat["p99"] == -1.0  # overflow bucket is JSON-safe -1
        assert lat["buckets"] == {"1": 1, "5": 1, "+Inf": 2}
        assert payload["traces"][0]["event"] == "grow"
        assert "traces" not in self._populated().to_dict(include_traces=False)

    def test_render_prometheus(self):
        text = self._populated().render_prometheus()
        assert "# HELP hits lookup hits" in text
        assert "# TYPE hits counter" in text
        assert "hits 7" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 99.5" in text
        assert "lat_count 2" in text


class TestPickleRebinding:
    def test_handles_rebind_to_live_registry(self):
        fresh = MetricsRegistry(enabled=True)
        previous = set_registry(fresh)
        try:
            counter = fresh.counter("hits")
            hist = fresh.histogram("lat", (1, 5))
            counter.inc(9)
            restored_counter = pickle.loads(pickle.dumps(counter))
            restored_hist = pickle.loads(pickle.dumps(hist))
            # By-name rebinding: the restored handles ARE the live ones.
            assert restored_counter is counter
            assert restored_hist is hist
            restored_counter.inc()
            assert fresh.value("hits") == 10
        finally:
            set_registry(previous)

    def test_null_handles_unpickle_to_singletons(self):
        assert pickle.loads(pickle.dumps(NULL_COUNTER)) is NULL_COUNTER
        assert pickle.loads(pickle.dumps(NULL_HISTOGRAM)) is NULL_HISTOGRAM


class TestEngineIntegration:
    def test_engine_records_probes_and_update_kinds(self):
        from repro.core import ChiselConfig, ChiselLPM
        from repro.prefix import RoutingTable
        from repro.workloads import synthetic_table

        registry = get_registry()
        probes_before = registry.value("chisel_subcell_probes_total")
        engine = ChiselLPM.build(synthetic_table(150, seed=3),
                                 ChiselConfig(seed=3))
        for key in range(0, 1 << 28, 1 << 23):
            engine.lookup(key)
        assert registry.value("chisel_subcell_probes_total") > probes_before
        depth = registry.get("chisel_encoder_depth")
        assert depth is not None and depth.count > 0

    def test_pickled_engine_reports_into_live_registry(self, tmp_path):
        from repro.core import ChiselConfig, ChiselLPM
        from repro.workloads import synthetic_table

        registry = get_registry()
        engine = ChiselLPM.build(synthetic_table(100, seed=4),
                                 ChiselConfig(seed=4))
        restored = pickle.loads(pickle.dumps(engine))
        before = registry.value("chisel_subcell_probes_total")
        restored.lookup(0xDEADBEEF)
        assert registry.value("chisel_subcell_probes_total") > before
