"""Unit tests for the partitioned Bloomier filter and spillover TCAM."""

import random

import pytest

from repro.bloomier import (
    InsertOutcome,
    PartitionedBloomierFilter,
    SpilloverCapacityError,
    SpilloverTCAM,
)


def build(num_keys=3000, partitions=8, seed=0):
    rng = random.Random(seed)
    keys = rng.sample(range(1 << 32), num_keys)
    items = {key: index % 4096 for index, key in enumerate(keys)}
    pbf = PartitionedBloomierFilter(
        capacity=num_keys, key_bits=32, value_bits=12,
        partitions=partitions, rng=random.Random(seed + 1),
    )
    pbf.setup(items)
    return pbf, items


class TestSpilloverTCAM:
    def test_insert_lookup_remove(self):
        tcam = SpilloverTCAM(capacity=4)
        tcam.insert(10, 1)
        assert tcam.lookup(10) == 1
        assert tcam.remove(10) == 1
        assert tcam.lookup(10) is None

    def test_capacity_enforced(self):
        tcam = SpilloverTCAM(capacity=2)
        tcam.insert(1, 1)
        tcam.insert(2, 2)
        with pytest.raises(SpilloverCapacityError):
            tcam.insert(3, 3)

    def test_overwrite_does_not_consume_capacity(self):
        tcam = SpilloverTCAM(capacity=1)
        tcam.insert(1, 1)
        tcam.insert(1, 2)
        assert tcam.lookup(1) == 2

    def test_iteration_and_len(self):
        tcam = SpilloverTCAM(capacity=4)
        tcam.insert(1, 10)
        tcam.insert(2, 20)
        assert dict(iter(tcam)) == {1: 10, 2: 20}
        assert len(tcam) == 2

    def test_storage_bits_model(self):
        tcam = SpilloverTCAM(capacity=32, key_bits=32, value_bits=20)
        assert tcam.storage_bits() == 32 * (64 + 20)


class TestPartitionedSetup:
    def test_all_values_retrievable(self):
        pbf, items = build()
        assert all(pbf.lookup(key) == value for key, value in items.items())

    def test_partitioning_is_stable(self):
        pbf, items = build(num_keys=500)
        key = next(iter(items))
        assert pbf.group_of(key) == pbf.group_of(key)

    def test_groups_reasonably_balanced(self):
        pbf, items = build(num_keys=4000, partitions=8)
        counts = [0] * 8
        for key in items:
            counts[pbf.group_of(key)] += 1
        assert max(counts) < 2 * (4000 / 8)

    def test_contains_and_get(self):
        pbf, items = build(num_keys=200)
        key, value = next(iter(items.items()))
        assert key in pbf
        assert pbf.get(key) == value
        assert 0xFFFFFFFF not in pbf or 0xFFFFFFFF in items

    def test_len(self):
        pbf, items = build(num_keys=321)
        assert len(pbf) == 321


class TestPartitionedDynamics:
    def test_insert_outcomes(self):
        pbf, items = build(num_keys=2000, seed=3)
        rng = random.Random(17)
        outcomes = set()
        inserted = {}
        for _ in range(600):
            key = rng.getrandbits(32)
            if key in pbf:
                continue
            outcome = pbf.insert(key, 77)
            outcomes.add(outcome)
            inserted[key] = 77
        assert InsertOutcome.SINGLETON in outcomes
        assert all(pbf.lookup(k) == v for k, v in inserted.items())
        assert all(pbf.lookup(k) == v for k, v in items.items() if k not in inserted)

    def test_rebuild_preserves_all(self):
        """Force rebuilds by loading a tiny filter heavily."""
        pbf = PartitionedBloomierFilter(
            capacity=64, key_bits=32, value_bits=8,
            partitions=2, rng=random.Random(5),
        )
        pbf.setup({k: k % 256 for k in range(1, 30)})
        rng = random.Random(18)
        added = {}
        while len(pbf) < 60:
            key = rng.getrandbits(32)
            if key in pbf:
                continue
            pbf.insert(key, key % 256)
            added[key] = key % 256
        assert pbf.rebuild_count + pbf.singleton_insert_count >= len(added)
        assert all(pbf.lookup(k) == v for k, v in added.items())

    def test_delete_removes_key(self):
        pbf, items = build(num_keys=400, seed=4)
        key = next(iter(items))
        pbf.delete(key)
        assert key not in pbf
        assert len(pbf) == 399

    def test_delete_absent_raises(self):
        pbf, items = build(num_keys=100, seed=5)
        missing = 0
        while missing in items:
            missing += 1
        with pytest.raises(KeyError):
            pbf.delete(missing)

    def test_delete_many_batches_rebuilds(self):
        pbf, items = build(num_keys=1000, seed=6)
        victims = list(items)[:100]
        rebuilds = pbf.delete_many(victims)
        assert rebuilds <= pbf.partitions
        assert all(v not in pbf for v in victims)
        survivors = {k: v for k, v in items.items() if k not in set(victims)}
        assert all(pbf.lookup(k) == v for k, v in survivors.items())

    def test_storage_includes_spillover(self):
        pbf, _items = build(num_keys=100, seed=7)
        assert pbf.storage_bits() > pbf.spillover.storage_bits()
