"""Unit tests for the Bloomier peeling/setup algorithm."""

import random

import pytest

from repro.bloomier.peeling import PeelStallError, peel
from repro.hashing import SegmentedHashGroup


def random_neighborhoods(num_keys, slots_per_key, k=3, seed=0):
    rng = random.Random(seed)
    group = SegmentedHashGroup(k, max(1, num_keys * slots_per_key // k), 32, rng)
    keys = rng.sample(range(1 << 32), num_keys)
    return [group.locations(key) for key in keys], group.total_slots


class TestPeelBasics:
    def test_single_key(self):
        result = peel([(0, 3, 5)], 9)
        assert result.converged
        assert len(result.order) == 1
        key, tau = result.order[0]
        assert key == 0 and tau in (0, 3, 5)

    def test_paper_figure1_shape(self):
        """Four keys over 12 slots, as in Fig. 1: all peel, each gets a
        distinct tau slot."""
        neighborhoods = [
            (1, 3, 6),   # t0
            (1, 4, 8),   # t1  -> unique slot among these
            (3, 6, 9),   # t2
            (0, 4, 9),   # t3
        ]
        result = peel(neighborhoods, 12)
        assert result.converged
        taus = [tau for _key, tau in result.order]
        assert len(set(taus)) == 4
        for key, tau in result.order:
            assert tau in neighborhoods[key]

    def test_all_keys_peeled_once(self):
        neighborhoods, slots = random_neighborhoods(500, 3)
        result = peel(neighborhoods, slots)
        assert result.converged
        peeled = [key for key, _tau in result.order]
        assert sorted(peeled) == list(range(500))

    def test_tau_uniqueness_invariant(self):
        """tau(t) must be one-to-one (the collision-freedom guarantee)."""
        neighborhoods, slots = random_neighborhoods(1000, 3, seed=1)
        result = peel(neighborhoods, slots)
        taus = [tau for _key, tau in result.order]
        assert len(set(taus)) == len(taus)

    def test_encoding_order_safety(self):
        """Gamma's defining property: when key t is encoded, its tau slot is
        not in the neighborhood of any key encoded earlier."""
        neighborhoods, slots = random_neighborhoods(800, 3, seed=2)
        result = peel(neighborhoods, slots)
        seen_slots = set()
        for key, tau in result.encoding_order():
            assert tau not in seen_slots
            seen_slots.update(neighborhoods[key])

    def test_empty_input(self):
        result = peel([], 10)
        assert result.converged and result.order == []


class TestPeelStalls:
    def test_two_core_stalls(self):
        """Two keys with identical neighborhoods cannot be peeled."""
        neighborhoods = [(0, 1, 2), (0, 1, 2)]
        with pytest.raises(PeelStallError):
            peel(neighborhoods, 3, max_spill=0)

    def test_spill_breaks_two_core(self):
        neighborhoods = [(0, 1, 2), (0, 1, 2)]
        result = peel(neighborhoods, 3, max_spill=1)
        assert len(result.spilled) == 1
        assert len(result.order) == 1
        assert not result.converged

    def test_spill_budget_respected(self):
        # Three pairwise-identical neighborhoods need 2 evictions.
        neighborhoods = [(0, 1, 2)] * 3
        with pytest.raises(PeelStallError):
            peel(neighborhoods, 3, max_spill=1)
        result = peel(neighborhoods, 3, max_spill=2)
        assert len(result.spilled) == 2

    def test_spilled_keys_not_in_order(self):
        neighborhoods = [(0, 1, 2), (0, 1, 2), (3, 4, 5)]
        result = peel(neighborhoods, 6, max_spill=1)
        ordered = {key for key, _tau in result.order}
        assert ordered.isdisjoint(result.spilled)
        assert ordered | set(result.spilled) == {0, 1, 2}

    def test_stall_error_reports_remaining(self):
        with pytest.raises(PeelStallError) as info:
            peel([(0, 1, 2)] * 4, 3, max_spill=0)
        assert info.value.remaining == 4


class TestPeelScale:
    def test_large_random_set_converges(self):
        """At m/n = 3 stalls should be essentially impossible (Fig. 3)."""
        neighborhoods, slots = random_neighborhoods(20_000, 3, seed=3)
        result = peel(neighborhoods, slots)
        assert result.converged

    def test_linear_work(self):
        """Each key appears exactly once in order + spilled (O(n) total)."""
        neighborhoods, slots = random_neighborhoods(5000, 3, seed=4)
        result = peel(neighborhoods, slots, max_spill=100)
        assert len(result.order) + len(result.spilled) == 5000
