"""Tests for engine checkpoint/restore and CLI integration."""

import pickle

import pytest

from repro.cli import main
from repro.core import ChiselConfig, ChiselLPM
from repro.prefix import Prefix
from repro.workloads.io import save_table

from .conftest import sample_keys


class TestPrefixPickle:
    def test_roundtrip(self):
        prefix = Prefix.from_string("10.1.0.0/16")
        clone = pickle.loads(pickle.dumps(prefix))
        assert clone == prefix
        assert clone.width == 32

    def test_still_immutable_after_unpickle(self):
        clone = pickle.loads(pickle.dumps(Prefix.from_string("10.0.0.0/8")))
        with pytest.raises(AttributeError):
            clone.value = 11


class TestEngineCheckpoint:
    def test_save_load_lookup_identical(self, small_table, tmp_path, rng):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=95))
        path = tmp_path / "engine.pkl"
        engine.save(str(path))
        restored = ChiselLPM.load(str(path))
        for key in sample_keys(small_table, rng, 500):
            assert restored.lookup(key) == engine.lookup(key)
        assert len(restored) == len(engine)

    def test_restored_engine_still_updatable(self, small_table, tmp_path):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=96))
        path = tmp_path / "engine.pkl"
        engine.save(str(path))
        restored = ChiselLPM.load(str(path))
        prefix = Prefix.from_string("203.0.113.0/24")
        restored.announce(prefix, 42)
        assert restored.lookup(prefix.network_int() | 7) == 42
        restored.withdraw(prefix)
        restored.purge_dirty()
        assert len(restored) == len(small_table)

    def test_load_rejects_wrong_type(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "an engine"}, handle)
        with pytest.raises(TypeError):
            ChiselLPM.load(str(path))


class TestCLIPersistence:
    def test_build_save_then_lookup_from_engine(self, tmp_path, capsys):
        from repro.workloads import synthetic_table

        table_path = tmp_path / "t.tbl"
        save_table(synthetic_table(600, seed=97), table_path)
        engine_path = tmp_path / "engine.pkl"
        assert main(["build", "--table", str(table_path),
                     "--save", str(engine_path)]) == 0
        assert engine_path.exists()
        capsys.readouterr()
        assert main(["lookup", "--engine", str(engine_path),
                     "10.0.0.1"]) == 0
        assert "10.0.0.1" in capsys.readouterr().out
