"""Tests for DP-optimal collapse planning."""

import pytest

from repro.baselines import BinaryTrie
from repro.core import ChiselConfig, ChiselLPM
from repro.core.collapse import (
    plan_for_table,
    plan_greedy,
    plan_optimal,
    plan_storage_bits,
)
from repro.prefix import Prefix, RoutingTable

from .conftest import sample_keys


class TestPlanOptimal:
    def test_partitions_all_populated_lengths(self, small_table):
        plan = plan_optimal(small_table, stride=4)
        for length in small_table.stats().populated_lengths:
            assert plan.has_interval_for(length)

    def test_spans_respect_stride(self, small_table):
        for stride in (2, 4, 6):
            plan = plan_optimal(small_table, stride=stride)
            assert all(cell.span <= stride for cell in plan)

    @staticmethod
    def _worst_cost(table, plan):
        """The DP's worst-case objective, recomputed independently."""
        from repro.core.sizing import DEFAULT_PARTITION_CAPACITY, pointer_bits

        histogram = table.stats().length_histogram
        total = 0
        for cell in plan:
            entries = sum(
                count for length, count in histogram.items()
                if cell.covers(length)
            )
            if not entries:
                continue
            ptr = pointer_bits(min(entries, DEFAULT_PARTITION_CAPACITY))
            total += entries * (3 * ptr + cell.base + 1 + (1 << cell.span) + ptr)
        return total

    def test_never_worse_than_greedy_worst_case(self, small_table):
        """The DP minimizes the exact objective the greedy approximates."""
        greedy = plan_greedy(
            small_table.stats().populated_lengths, 4, small_table.width
        )
        optimal = plan_optimal(small_table, 4, objective="worst")
        assert self._worst_cost(small_table, optimal) <= \
            self._worst_cost(small_table, greedy)

    def test_average_objective_beats_or_ties_greedy(self, small_table):
        greedy = plan_greedy(
            small_table.stats().populated_lengths, 4, small_table.width
        )
        optimal = plan_optimal(small_table, 4, objective="average")
        assert plan_storage_bits(small_table, optimal) <= \
            plan_storage_bits(small_table, greedy)

    def test_unknown_objective(self, small_table):
        with pytest.raises(ValueError):
            plan_optimal(small_table, 4, objective="median")

    def test_empty_table(self):
        plan = plan_optimal(RoutingTable(width=32), 4)
        assert len(plan) == 1

    def test_single_length(self):
        table = RoutingTable.from_strings([("10.0.0.0/24", 1)])
        plan = plan_optimal(table, 4)
        assert [(c.base, c.span) for c in plan] == [(24, 0)]

    def test_boundary_choice_beats_greedy_on_skewed_table(self):
        """A table where greedy's bottom-up boundary is clearly wrong: a
        thin short length followed by a heavy one exactly stride+1 above.
        Greedy anchors at the thin length and strands the heavy mass in
        its own cell with a wide base; the DP keeps the heavy length as
        its own cheap base."""
        table = RoutingTable(width=32)
        table.add(Prefix(1, 8, 32), 1)  # one /8
        for value in range(0, 4000, 2):  # heavy, poorly-merging /12 mass
            table.add(Prefix(value, 12, 32), 2)
        greedy = plan_greedy([8, 12], 4, 32)
        optimal = plan_optimal(table, 4, objective="average")
        assert plan_storage_bits(table, optimal) <= \
            plan_storage_bits(table, greedy)

    def test_engine_builds_with_optimal_coverage(self, small_table, rng):
        engine = ChiselLPM.build(
            small_table, ChiselConfig(coverage="optimal", seed=90)
        )
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 500):
            assert engine.lookup(key) == oracle.lookup(key)

    def test_plan_for_table_dispatch(self, small_table):
        plan = plan_for_table(small_table, 4, "optimal")
        assert len(plan) >= 1
