"""Unit tests for the Prefix/key representation."""

import pytest

from repro.prefix import (
    IPV4_WIDTH,
    IPV6_WIDTH,
    Prefix,
    PrefixError,
    key_bits,
    key_from_string,
    key_to_string,
)


class TestConstruction:
    def test_from_cidr_string(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert (p.value, p.length, p.width) == (10, 8, 32)

    def test_from_cidr_longer(self):
        p = Prefix.from_string("192.168.1.0/24")
        assert p.length == 24
        assert p.value == (192 << 16) | (168 << 8) | 1

    def test_from_ipv6_string(self):
        p = Prefix.from_string("2001:db8::/32")
        assert (p.length, p.width) == (32, IPV6_WIDTH)
        assert p.value == 0x20010DB8

    def test_from_bits(self):
        p = Prefix.from_bits("10011")
        assert (p.value, p.length) == (0b10011, 5)

    def test_from_bits_star_suffix(self):
        assert Prefix.from_string("10011*") == Prefix.from_bits("10011")

    def test_from_bits_rejects_nonbinary(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("10021")

    def test_zero_length_prefix(self):
        p = Prefix(0, 0, 32)
        assert p.length == 0
        assert p.covers(0xFFFFFFFF)

    def test_value_must_fit_length(self):
        with pytest.raises(PrefixError):
            Prefix(0b100, 2, 32)

    def test_length_must_fit_width(self):
        with pytest.raises(PrefixError):
            Prefix(0, 33, 32)

    def test_from_key_takes_top_bits(self):
        key = key_from_string("192.168.1.7")
        assert Prefix.from_key(key, 24) == Prefix.from_string("192.168.1.0/24")

    def test_from_key_full_width(self):
        key = key_from_string("1.2.3.4")
        p = Prefix.from_key(key, 32)
        assert p.value == key

    def test_from_key_rejects_oversized_key(self):
        with pytest.raises(PrefixError):
            Prefix.from_key(1 << 32, 8, 32)

    def test_immutability(self):
        p = Prefix.from_string("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.value = 11


class TestRendering:
    def test_str_roundtrip_ipv4(self):
        text = "172.16.0.0/12"
        assert str(Prefix.from_string(text)) == text

    def test_str_roundtrip_ipv6(self):
        text = "2001:db8::/32"
        assert str(Prefix.from_string(text)) == text

    def test_bits_rendering(self):
        assert Prefix.from_bits("10011").bits() == "10011"

    def test_bits_empty_for_default(self):
        assert Prefix(0, 0, 32).bits() == ""

    def test_network_int_left_aligns(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert p.network_int() == 10 << 24


class TestCollapseExpand:
    def test_collapse_drops_low_bits(self):
        p = Prefix.from_bits("10011")
        assert p.collapse(4) == Prefix.from_bits("1001")

    def test_collapse_to_same_length_is_identity(self):
        p = Prefix.from_bits("10011")
        assert p.collapse(5) == p

    def test_collapse_to_longer_rejected(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("10011").collapse(6)

    def test_collapse_fig5_example(self):
        """Paper Fig. 5: P1..P3 collapse to 1001 and 1010 at stride 3."""
        p1, p2, p3 = (Prefix.from_bits(b) for b in ("10011", "101011", "1001101"))
        collapsed = {p.collapse(4).bits() for p in (p1, p2, p3)}
        assert collapsed == {"1001", "1010"}

    def test_expand_enumerates_all(self):
        p = Prefix.from_bits("10")
        expanded = list(p.expand(4))
        assert len(expanded) == 4
        assert {e.bits() for e in expanded} == {"1000", "1001", "1010", "1011"}

    def test_expand_to_same_length(self):
        p = Prefix.from_bits("10")
        assert list(p.expand(2)) == [p]

    def test_expand_to_shorter_rejected(self):
        with pytest.raises(PrefixError):
            list(Prefix.from_bits("10").expand(1))

    def test_collapse_then_contains_original(self):
        p = Prefix.from_string("192.168.64.0/18")
        assert p.collapse(16).contains(p)


class TestMatching:
    def test_covers_matching_key(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert p.covers(key_from_string("10.255.0.1"))

    def test_covers_rejects_other_key(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert not p.covers(key_from_string("11.0.0.1"))

    def test_default_covers_everything(self):
        assert Prefix(0, 0, 32).covers(key_from_string("255.255.255.255"))

    def test_contains_more_specific(self):
        outer = Prefix.from_string("10.0.0.0/8")
        inner = Prefix.from_string("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert p.contains(p)

    def test_contains_rejects_sibling(self):
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix.from_string("11.0.0.0/8")
        assert not a.contains(b)

    def test_suffix_bits(self):
        p = Prefix.from_bits("1001101")
        assert p.suffix_bits(4) == 0b101

    def test_suffix_bits_at_own_length(self):
        p = Prefix.from_bits("1001101")
        assert p.suffix_bits(7) == 0

    def test_suffix_bits_beyond_length_rejected(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits("10").suffix_bits(3)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix(10, 8, 32)
        assert a == b
        assert hash(a) == hash(b)

    def test_same_value_different_length_distinct(self):
        assert Prefix(1, 1, 32) != Prefix(1, 2, 32)

    def test_ordering_is_total(self):
        prefixes = [Prefix(v, l, 32) for v, l in ((1, 4), (0, 0), (3, 2))]
        assert sorted(prefixes) == sorted(prefixes, key=lambda p: p.as_tuple())


class TestKeyHelpers:
    def test_key_roundtrip_ipv4(self):
        assert key_to_string(key_from_string("8.8.4.4")) == "8.8.4.4"

    def test_key_roundtrip_ipv6(self):
        text = "2001:db8::1"
        assert key_to_string(key_from_string(text), IPV6_WIDTH) == text

    def test_key_bits_first_octet(self):
        assert key_bits(key_from_string("192.168.1.1"), 32, 0, 8) == 192

    def test_key_bits_middle(self):
        assert key_bits(key_from_string("192.168.1.1"), 32, 8, 8) == 168

    def test_key_bits_zero_count(self):
        assert key_bits(0xFFFF, IPV4_WIDTH, 4, 0) == 0

    def test_key_bits_overflow_rejected(self):
        with pytest.raises(PrefixError):
            key_bits(0, 32, 30, 4)
