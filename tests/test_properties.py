"""Property-based tests (hypothesis) on core invariants.

These are the heavy correctness guns: every LPM scheme in the repository
must agree with the binary-trie oracle on arbitrary tables and keys, the
Bloomier filter must be exactly a function table, and buckets/allocators
must hold their structural invariants under arbitrary operation sequences.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.apps.ranges import prefixes_cover, range_to_prefixes
from repro.baselines import BinaryTrie, NaiveHashLPM, TreeBitmap
from repro.bloomier import BloomierFilter
from repro.core import ChiselConfig, ChiselLPM
from repro.core.alloc import BlockAllocator
from repro.core.bitvector import Bucket
from repro.prefix import (
    Prefix,
    RoutingTable,
    expansion_counts,
    optimal_targets,
    targets_for_stride,
)


# -- strategies ---------------------------------------------------------------

@st.composite
def prefixes(draw, width=32, min_length=0):
    length = draw(st.integers(min_value=min_length, max_value=width))
    value = draw(st.integers(min_value=0, max_value=(1 << length) - 1)) if length else 0
    return Prefix(value, length, width)


@st.composite
def routing_tables(draw, width=32, max_routes=60):
    routes = draw(st.lists(
        st.tuples(prefixes(width=width), st.integers(1, 250)),
        min_size=1, max_size=max_routes,
    ))
    table = RoutingTable(width=width)
    for prefix, next_hop in routes:
        table.add(prefix, next_hop)
    return table


keys32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


# -- prefix algebra -------------------------------------------------------------

class TestPrefixProperties:
    @given(prefixes(), st.data())
    def test_collapse_then_contains(self, prefix, data):
        new_length = data.draw(st.integers(0, prefix.length))
        assert prefix.collapse(new_length).contains(prefix)

    @given(prefixes(min_length=1), st.data())
    def test_expansion_partition(self, prefix, data):
        """Expansions are disjoint and cover exactly the original's keys."""
        extra = data.draw(st.integers(0, min(4, prefix.width - prefix.length)))
        expanded = list(prefix.expand(prefix.length + extra))
        assert len(expanded) == 1 << extra
        assert len(set(expanded)) == len(expanded)
        assert all(prefix.contains(e) for e in expanded)

    @given(prefixes(), keys32)
    def test_covers_agrees_with_from_key(self, prefix, key):
        assert prefix.covers(key) == (
            Prefix.from_key(key, prefix.length) == prefix
        )

    @given(prefixes(min_length=1), st.data())
    def test_collapse_roundtrip_value(self, prefix, data):
        base = data.draw(st.integers(0, prefix.length))
        collapsed = prefix.collapse(base)
        suffix = prefix.suffix_bits(base)
        rebuilt = (collapsed.value << (prefix.length - base)) | suffix
        assert rebuilt == prefix.value


# -- cross-scheme LPM equivalence --------------------------------------------------

class TestLPMEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(routing_tables(), st.lists(keys32, min_size=1, max_size=40))
    def test_chisel_equals_trie(self, table, keys):
        engine = ChiselLPM.build(table, ChiselConfig(seed=1, partitions=2))
        oracle = BinaryTrie.from_table(table)
        probes = list(keys)
        for prefix in table.prefixes():
            probes.append(prefix.network_int())
        for key in probes:
            assert engine.lookup(key) == oracle.lookup(key)

    @settings(max_examples=30, deadline=None)
    @given(routing_tables(), st.lists(keys32, min_size=1, max_size=40))
    def test_tree_bitmap_equals_trie(self, table, keys):
        tree = TreeBitmap.from_table(table, stride=4)
        oracle = BinaryTrie.from_table(table)
        for key in keys:
            assert tree.lookup(key) == oracle.lookup(key)

    @settings(max_examples=20, deadline=None)
    @given(routing_tables(), st.lists(keys32, min_size=1, max_size=30))
    def test_naive_hash_equals_trie(self, table, keys):
        lpm = NaiveHashLPM.build(table, seed=1)
        oracle = BinaryTrie.from_table(table)
        for key in keys:
            assert lpm.lookup(key) == oracle.lookup(key)


# -- Bloomier invariants --------------------------------------------------------------

class TestBloomierProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.integers(0, (1 << 32) - 1), min_size=1, max_size=300),
        st.integers(0, 1 << 16),
    )
    def test_exact_function_table(self, keys, seed):
        items = {key: (key * 7 + 3) & 0xFFF for key in keys}
        bf = BloomierFilter(
            capacity=len(items), key_bits=32, value_bits=12,
            rng=random.Random(seed),
        )
        report = bf.setup(items)
        for key in keys:
            if key not in report.spilled:
                assert bf.lookup(key) == items[key]

    @settings(max_examples=15, deadline=None)
    @given(
        st.sets(st.integers(0, (1 << 32) - 1), min_size=10, max_size=200),
        st.integers(0, 1 << 16),
    )
    def test_inserts_never_corrupt(self, keys, seed):
        ordered = sorted(keys)
        half = len(ordered) // 2
        base = {key: key & 0xFF for key in ordered[:half]}
        bf = BloomierFilter(
            capacity=len(ordered), key_bits=32, value_bits=8,
            rng=random.Random(seed),
        )
        bf.setup(base)
        added = {}
        for key in ordered[half:]:
            if bf.try_insert(key, key & 0xFF):
                added[key] = key & 0xFF
        for key, value in {**base, **added}.items():
            assert bf.lookup(key) == value


# -- bucket and allocator invariants ------------------------------------------------------

class TestBucketProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 15), st.integers(1, 99)),
            min_size=0, max_size=12,
        )
    )
    def test_region_matches_winners(self, entries):
        """For any bucket contents: popcount-indexed region = per-expansion
        winner next hops, and ones() = popcount(bit_vector())."""
        bucket = Bucket(base=8, span=4, pointer=0)
        for rel_length, suffix, next_hop in entries:
            bucket.add(8 + rel_length, suffix & ((1 << rel_length) - 1), next_hop)
        vector = bucket.bit_vector()
        region = bucket.region()
        assert bucket.ones() == bin(vector).count("1") == len(region)
        rank = 0
        for expansion in range(16):
            if (vector >> expansion) & 1:
                assert region[rank] == bucket.next_hop_for(expansion)
                rank += 1
            else:
                assert bucket.next_hop_for(expansion) is None

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_range_to_prefixes_exact_cover(self, data):
        """Any 16-bit range: the prefix set covers exactly [low, high] and
        respects the 2W-2 size bound."""
        low = data.draw(st.integers(0, (1 << 16) - 1))
        high = data.draw(st.integers(low, (1 << 16) - 1))
        prefixes = range_to_prefixes(low, high, 16)
        assert len(prefixes) <= 2 * 16 - 2
        probes = {low, high, (low + high) // 2}
        if low > 0:
            probes.add(low - 1)
        if high < (1 << 16) - 1:
            probes.add(high + 1)
        probes.update(data.draw(st.lists(st.integers(0, (1 << 16) - 1),
                                         max_size=8)))
        for value in probes:
            assert prefixes_cover(prefixes, value) == (low <= value <= high)

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.integers(1, 32), st.integers(1, 5000),
                           min_size=1, max_size=12))
    def test_optimal_targets_beat_stride_grouping(self, histogram):
        """The DP's expansion cost never exceeds the stride-grouping
        heuristic's, for any length histogram."""
        table = RoutingTable(width=32)
        value = 0
        for length, count in histogram.items():
            for _ in range(min(count, 60)):  # cap for test speed
                table.add(Prefix(value % (1 << length), length, 32), 1)
                value += 2654435761
        stride_targets = targets_for_stride(sorted(histogram), 4)
        best_targets = optimal_targets(
            table.stats().length_histogram, len(stride_targets)
        )
        assert max(best_targets) >= max(histogram)
        stride_cost, _n = expansion_counts(table, stride_targets)
        best_cost, _n = expansion_counts(table, best_targets)
        assert best_cost <= stride_cost

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=60), st.data())
    def test_allocator_blocks_disjoint(self, sizes, data):
        """Live blocks never overlap, under arbitrary alloc/free interleaving."""
        alloc = BlockAllocator()
        live = {}
        for index, size in enumerate(sizes):
            pointer = alloc.allocate(size)
            block = alloc.block_size(size)
            for existing, (_s, existing_block) in live.items():
                assert pointer + block <= existing or existing + existing_block <= pointer
            live[pointer] = (size, block)
            if live and data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(sorted(live)))
                victim_size, _block = live.pop(victim)
                alloc.free(victim, victim_size)
