"""Property: churn, crash, rebuild from shadow — the image is identical.

The §4.4 design premise is that the software shadow is a complete,
authoritative description of the hardware state: anything the hardware
holds can be re-derived from it.  These properties pin that down under
randomized churn — an engine that survives a "crash" (persistence
round-trip) or a full scrub must present a byte-identical
:class:`HardwareImage`, and a corrupted engine must return to exactly the
pre-fault image once scrubbed.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ChiselConfig, ChiselLPM
from repro.core.image import HardwareImage
from repro.faults.inject import FaultInjector
from repro.faults.scrub import scrub_engine
from repro.prefix.prefix import Prefix
from repro.prefix.table import RoutingTable

WIDTH = 16  # small keyspace so generated prefixes overlap and collide


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry per module: fault/degrade runs record long
    lock holds and large counter values that must not leak into other
    modules' global-registry assertions (e.g. the serve p99 gate)."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)

_prefix = st.builds(
    lambda value, length: Prefix(value >> (WIDTH - length), length, WIDTH),
    st.integers(min_value=0, max_value=2 ** WIDTH - 1),
    st.integers(min_value=4, max_value=WIDTH),
)

_churn = st.lists(
    st.tuples(_prefix, st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=60,
)


def _engine_after(churn, withdraw_every=3):
    seed_table = RoutingTable(width=WIDTH, name="property")
    seed_table.add(Prefix(0, 4, WIDTH), 1)
    engine = ChiselLPM.build(seed_table, ChiselConfig(stride=4, width=WIDTH))
    for step, (prefix, next_hop) in enumerate(churn):
        if step % withdraw_every == 2 and prefix in dict(engine.iter_routes()):
            engine.withdraw(prefix)
        else:
            engine.announce(prefix, next_hop)
    return engine


def _assert_identical(image_a, image_b):
    forward = image_a.diff(image_b)
    backward = image_b.diff(image_a)
    assert forward.word_count == 0, forward.tables_touched()
    assert backward.word_count == 0, backward.tables_touched()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn=_churn)
def test_churn_crash_reload_yields_identical_image(churn):
    engine = _engine_after(churn)
    before = HardwareImage.snapshot(engine)
    revived = pickle.loads(pickle.dumps(engine))  # the crash + warm restart
    _assert_identical(before, HardwareImage.snapshot(revived))
    # The revived engine is live, not a husk: routes answer identically.
    for key in range(0, 2 ** WIDTH, 251):
        assert revived.lookup(key) == engine.lookup(key)


#: Kinds whose repair is a literal write-back from the shadow; repairing
#: them must restore the exact pre-fault bytes.  (The Index Table is the
#: exception: its repair is a group re-peel, which may legitimately land
#: on a *different* valid encoding of the same function.)
_WRITE_BACK_KINDS = ("filter", "dirty", "bitvector", "regionptr", "result")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn=_churn, seed=st.integers(min_value=0, max_value=2 ** 16))
def test_faults_then_scrub_yields_identical_image(churn, seed):
    engine = _engine_after(churn)
    before = HardwareImage.snapshot(engine)
    injector = FaultInjector(seed=seed)
    injected = sum(
        injector.flip_table_bit(engine, kind=kind) is not None
        for _ in range(3) for kind in _WRITE_BACK_KINDS
    )
    report = scrub_engine(engine)
    assert report.healthy
    assert report.total_detected >= min(injected, 1)
    _assert_identical(before, HardwareImage.snapshot(engine))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn=_churn, seed=st.integers(min_value=0, max_value=2 ** 16))
def test_index_faults_scrub_to_an_equivalent_engine(churn, seed):
    engine = _engine_after(churn)
    baseline = {key: engine.lookup(key) for key in range(0, 2 ** WIDTH, 97)}
    injector = FaultInjector(seed=seed)
    # One flip only: repeated flips could land on the same bit and cancel.
    injected = int(injector.flip_table_bit(engine, kind="index") is not None)
    report = scrub_engine(engine)
    assert report.healthy
    assert report.total_detected >= injected
    for key, expected in baseline.items():
        assert engine.lookup(key) == expected
    assert scrub_engine(engine).clean


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn=_churn)
def test_scrub_of_a_clean_engine_is_a_no_op(churn):
    engine = _engine_after(churn)
    before = HardwareImage.snapshot(engine)
    report = scrub_engine(engine)
    assert report.clean, report.to_dict()
    _assert_identical(before, HardwareImage.snapshot(engine))
