"""Unit tests for the CI perf-regression gate (``benchmarks/regress.py``).

The acceptance criterion from the PR: the gate must demonstrably fail on
an injected 30% throughput regression (and on >2x p99 growth), pass on
identical reports, and fail when a required report is missing.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_REGRESS_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "regress.py"
)
_spec = importlib.util.spec_from_file_location("chisel_regress",
                                               _REGRESS_PATH)
regress = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regress)


def healthy_reports():
    return {
        "serve_bench.json": {
            "snapshot_klookups_per_sec": 400.0,
            "scalar_klookups_per_sec": 30.0,
            "update_lock_hold_p99_ms": 1.5,
        },
        "metrics_smoke.json": {
            "noop_us_per_lookup": 20.0,
            "instrumented_us_per_lookup": 21.0,
        },
        "shard_bench.json": {
            "runs": [
                {"workers": 1, "aggregate_klookups_per_sec": 400.0},
                {"workers": 2, "aggregate_klookups_per_sec": 700.0},
                {"workers": 4, "aggregate_klookups_per_sec": 1100.0},
            ],
        },
        "backend_ablation.json": {
            "backends": {
                "bloomier": {"batch_klookups_per_sec": 900.0},
                "fuse": {"batch_klookups_per_sec": 880.0},
            },
        },
        "flat_bench.json": {
            "flat_klookups_per_sec": 2000.0,
            "flat_vs_legacy": 2.4,
            "jit_vs_legacy": 3.5,
        },
        "store_bench.json": {
            "coldstart_speedup": 2.3,
            "first_batch_ok": 1.0,
        },
        "replicate.json": {
            "traffic_advantage": 24.5,
            "converged_ok": 1.0,
        },
    }


class TestCompare:
    def test_identical_reports_pass(self):
        baselines = healthy_reports()
        report = regress.compare_reports(baselines,
                                         copy.deepcopy(baselines))
        assert report["passed"], report["failures"]
        assert len(report["checked"]) == len(regress.CHECKS)
        assert not report["skipped"]

    def test_injected_30_percent_throughput_drop_fails(self):
        """The acceptance criterion: a 30% drop must trip the gate."""
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        currents["serve_bench.json"]["snapshot_klookups_per_sec"] = 280.0
        report = regress.compare_reports(baselines, currents)
        assert not report["passed"]
        assert any("snapshot_klookups_per_sec" in failure
                   and "throughput dropped 30.0%" in failure
                   for failure in report["failures"]), report["failures"]

    def test_24_percent_drop_is_within_tolerance(self):
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        currents["serve_bench.json"]["snapshot_klookups_per_sec"] = 304.0
        assert regress.compare_reports(baselines, currents)["passed"]

    def test_p99_growth_over_2x_fails(self):
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        currents["serve_bench.json"]["update_lock_hold_p99_ms"] = 3.2
        report = regress.compare_reports(baselines, currents)
        assert not report["passed"]
        assert any("update_lock_hold_p99_ms" in failure
                   and "latency grew" in failure
                   for failure in report["failures"])

    def test_sub_floor_latency_noise_is_ignored(self):
        """Microsecond-scale jitter below the absolute floor must not
        trip the 2x rule even when the ratio is huge."""
        baselines = healthy_reports()
        baselines["serve_bench.json"]["update_lock_hold_p99_ms"] = 0.01
        currents = copy.deepcopy(baselines)
        currents["serve_bench.json"]["update_lock_hold_p99_ms"] = 0.04
        assert regress.compare_reports(baselines, currents)["passed"]

    def test_sharded_throughput_regression_fails(self):
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        currents["shard_bench.json"]["runs"][2][
            "aggregate_klookups_per_sec"] = 500.0
        report = regress.compare_reports(baselines, currents)
        assert not report["passed"]
        assert any("runs[workers=4]" in failure
                   for failure in report["failures"])

    def test_missing_required_current_file_fails(self):
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        del currents["shard_bench.json"]
        report = regress.compare_reports(baselines, currents)
        assert not report["passed"]
        assert any("shard_bench.json" in failure and "missing" in failure
                   for failure in report["failures"])

    def test_absent_file_checks_are_named_in_skips(self):
        """Checks on a missing current file must be listed by metric
        name, never silently dropped from the summary."""
        baselines = healthy_reports()
        currents = copy.deepcopy(baselines)
        del currents["shard_bench.json"]
        report = regress.compare_reports(baselines, currents)
        for workers in (1, 2, 4):
            metric = f"runs[workers={workers}].aggregate_klookups_per_sec"
            assert any(metric in note and "absent" in note
                       for note in report["skipped"]), report["skipped"]

    def test_missing_baseline_metric_is_skipped_not_failed(self):
        """A 4-worker run recorded on CI must not fail against a baseline
        written on a smaller box (and vice versa)."""
        baselines = healthy_reports()
        baselines["shard_bench.json"]["runs"] = baselines[
            "shard_bench.json"]["runs"][:2]
        currents = healthy_reports()
        report = regress.compare_reports(baselines, currents)
        assert report["passed"]
        assert any("runs[workers=4]" in note for note in report["skipped"])

    def test_current_metric_not_measured_is_skipped(self):
        baselines = healthy_reports()
        currents = healthy_reports()
        currents["shard_bench.json"]["runs"] = currents[
            "shard_bench.json"]["runs"][:2]
        report = regress.compare_reports(baselines, currents)
        assert report["passed"]
        assert any("not measured" in note for note in report["skipped"])


class TestFloorChecks:
    """The flat-datapath speedup bars (baseline-independent ratios)."""

    def test_ratio_below_floor_fails(self):
        currents = healthy_reports()
        currents["flat_bench.json"]["flat_vs_legacy"] = 1.6
        report = regress.compare_reports(healthy_reports(), currents)
        assert not report["passed"]
        assert any("flat_vs_legacy" in failure and "floor" in failure
                   for failure in report["failures"]), report["failures"]

    def test_jit_ratio_below_floor_fails(self):
        currents = healthy_reports()
        currents["flat_bench.json"]["jit_vs_legacy"] = 2.1
        report = regress.compare_reports(healthy_reports(), currents)
        assert not report["passed"]
        assert any("jit_vs_legacy" in failure
                   for failure in report["failures"])

    def test_ratio_at_floor_passes(self):
        currents = healthy_reports()
        currents["flat_bench.json"]["flat_vs_legacy"] = 2.0
        assert regress.compare_reports(healthy_reports(),
                                       currents)["passed"]

    def test_missing_jit_metric_skips_without_numba(self):
        """flat-bench omits jit_vs_legacy when numba is absent; the
        floor must report "not measured", never fail."""
        currents = healthy_reports()
        del currents["flat_bench.json"]["jit_vs_legacy"]
        report = regress.compare_reports(healthy_reports(), currents)
        assert report["passed"]
        assert any("jit_vs_legacy" in note and "not measured" in note
                   for note in report["skipped"])

    def test_floor_ignores_baseline_value(self):
        """Committing a weaker baseline must not weaken the bar."""
        baselines = healthy_reports()
        baselines["flat_bench.json"]["flat_vs_legacy"] = 0.5
        currents = healthy_reports()
        currents["flat_bench.json"]["flat_vs_legacy"] = 1.9
        report = regress.compare_reports(baselines, currents)
        assert not report["passed"]

    def test_replication_floors(self):
        """traffic_advantage >= 2 and converged_ok == 1 are the bars."""
        currents = healthy_reports()
        currents["replicate.json"]["traffic_advantage"] = 1.5
        report = regress.compare_reports(healthy_reports(), currents)
        assert not report["passed"]
        assert any("traffic_advantage" in failure
                   for failure in report["failures"])

        currents = healthy_reports()
        currents["replicate.json"]["converged_ok"] = 0.0
        report = regress.compare_reports(healthy_reports(), currents)
        assert not report["passed"]
        assert any("converged_ok" in failure
                   for failure in report["failures"])


class TestResolve:
    def test_dotted_and_selector_paths(self):
        document = {"a": {"b": 2.5},
                    "runs": [{"workers": 2, "rate": 7.0}]}
        assert regress.resolve(document, "a.b") == 2.5
        assert regress.resolve(document, "runs[workers=2].rate") == 7.0
        assert regress.resolve(document, "runs[workers=4].rate") is None
        assert regress.resolve(document, "a.missing") is None
        assert regress.resolve(None, "a.b") is None

    def test_non_numeric_values_are_not_metrics(self):
        assert regress.resolve({"flag": True}, "flag") is None
        assert regress.resolve({"name": "x"}, "name") is None


class TestMainEntryPoint:
    def test_end_to_end_against_directories(self, tmp_path):
        baselines_dir = tmp_path / "baselines"
        results_dir = tmp_path / "results"
        baselines_dir.mkdir()
        results_dir.mkdir()
        for name, payload in healthy_reports().items():
            (baselines_dir / name).write_text(json.dumps(payload))
            (results_dir / name).write_text(json.dumps(payload))
        report_path = tmp_path / "regress.json"
        assert regress.main([
            "--results", str(results_dir),
            "--baselines", str(baselines_dir),
            "--report", str(report_path),
        ]) == 0
        assert json.loads(report_path.read_text())["passed"]

        # Inject the 30% regression and the exit code must flip.
        broken = healthy_reports()
        broken["serve_bench.json"]["snapshot_klookups_per_sec"] = 280.0
        (results_dir / "serve_bench.json").write_text(
            json.dumps(broken["serve_bench.json"]))
        assert regress.main([
            "--results", str(results_dir),
            "--baselines", str(baselines_dir),
        ]) == 1

    def test_report_written_even_on_failure(self, tmp_path):
        """The CI artifact must exist (and say why) when the gate fails."""
        baselines_dir = tmp_path / "baselines"
        results_dir = tmp_path / "results"
        baselines_dir.mkdir()
        results_dir.mkdir()
        broken = healthy_reports()
        broken["serve_bench.json"]["snapshot_klookups_per_sec"] = 1.0
        for name, payload in healthy_reports().items():
            (baselines_dir / name).write_text(json.dumps(payload))
        for name, payload in broken.items():
            (results_dir / name).write_text(json.dumps(payload))
        report_path = tmp_path / "regress.json"
        assert regress.main([
            "--results", str(results_dir),
            "--baselines", str(baselines_dir),
            "--report", str(report_path),
        ]) == 1
        written = json.loads(report_path.read_text())
        assert not written["passed"]
        assert written["failures"]

    def test_report_written_even_on_crash(self, tmp_path, monkeypatch):
        """An internal error must still leave a report artifact."""
        def boom(*_args, **_kwargs):
            raise RuntimeError("synthetic gate crash")

        monkeypatch.setattr(regress, "compare_reports", boom)
        report_path = tmp_path / "regress.json"
        assert regress.main([
            "--results", str(tmp_path),
            "--baselines", str(tmp_path),
            "--report", str(report_path),
        ]) == 2
        written = json.loads(report_path.read_text())
        assert not written["passed"]
        assert "synthetic gate crash" in written["error"]

    def test_github_error_annotations(self, tmp_path, monkeypatch, capsys):
        """Failures emit ::error:: annotations naming the metric and the
        baseline-refresh command when running under GitHub Actions."""
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        baselines_dir = tmp_path / "baselines"
        results_dir = tmp_path / "results"
        baselines_dir.mkdir()
        results_dir.mkdir()
        broken = healthy_reports()
        broken["serve_bench.json"]["snapshot_klookups_per_sec"] = 1.0
        for name, payload in healthy_reports().items():
            (baselines_dir / name).write_text(json.dumps(payload))
        for name, payload in broken.items():
            (results_dir / name).write_text(json.dumps(payload))
        assert regress.main([
            "--results", str(results_dir),
            "--baselines", str(baselines_dir),
        ]) == 1
        out = capsys.readouterr().out
        assert "::error title=perf regression: " in out
        assert "serve_bench.json:snapshot_klookups_per_sec" in out
        assert "serve-bench --smoke --json" in out

    def test_no_annotations_outside_actions(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
        regress._annotate_failures(["x.json:metric: broke"])
        assert "::error" not in capsys.readouterr().out
