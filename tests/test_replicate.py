"""Replication-layer tests (``repro.replicate``).

Covers the wire codec (every message type roundtrips through the
framed connection), the route ledger (incremental XOR checksum, record
application, canonical rebuilds independent of arrival order), the
coordinator's journal/handshake behavior in-process, and one small
end-to-end run of the kill/corrupt/partition harness.
"""

import json
import socket
import subprocess
import sys
import threading

import pytest

from repro.core.config import ChiselConfig
from repro.prefix.prefix import Prefix
from repro.replicate import (
    ReplicateReport,
    RouteEntry,
    RouteLedger,
    bootstrap,
    canonical_image,
    run_replicate,
)
from repro.replicate import wire
from repro.replicate.state import canonical_fib
from repro.store.records import ANNOUNCE, WITHDRAW, LogRecord
from repro.workloads.synthetic import synthetic_table


def _config(table):
    return ChiselConfig(width=table.width, stride=4, seed=2006)


# -- wire codec --------------------------------------------------------------


RECORDS = (
    LogRecord(op=ANNOUNCE, seq=7, prefix_value=0x0A00, prefix_length=16,
              gateway="10.8.0.1", interface="eth0"),
    LogRecord(op=WITHDRAW, seq=8, prefix_value=0x0A01, prefix_length=16),
)

MESSAGES = [
    wire.encode_hello(wire.Hello(3, 120, 0xDEADBEEF, 950)),
    wire.encode_welcome(wire.Welcome(130, wire.MODE_DIVERGED)),
    wire.encode_record_msg(b"\x01payload"),
    wire.encode_status(wire.Status(3, 120, 0xFEEDFACE, 950)),
    wire.encode_status_ack(wire.StatusAck(False, 131)),
    wire.encode_recon_start(wire.ReconStart(120, 950, 0xABCD, b"digest")),
    wire.encode_recon_retry(wire.ReconRetry(48, 5)),
    wire.encode_recon_fixups(wire.ReconFixups(131, 0x1234, RECORDS,
                                              (17, 23))),
    wire.encode_recon_done(wire.ReconDone(131, 0x1234)),
    wire.encode_resync(wire.Resync(131, 0x1234, RECORDS)),
    wire.encode_bye(),
]


@pytest.mark.parametrize("payload", MESSAGES,
                         ids=lambda p: f"type{p[0]}")
def test_wire_codec_roundtrip(payload):
    kind, body = wire.decode_message(payload)
    assert kind == payload[0]
    if kind == wire.MSG_HELLO:
        assert body == wire.Hello(3, 120, 0xDEADBEEF, 950)
    elif kind == wire.MSG_WELCOME:
        assert body == wire.Welcome(130, wire.MODE_DIVERGED)
    elif kind == wire.MSG_RECORD:
        assert body == b"\x01payload"
    elif kind == wire.MSG_RECON_START:
        assert body.digest == b"digest" and body.count == 950
    elif kind == wire.MSG_RECON_FIXUPS:
        assert body.records == RECORDS and body.stale == (17, 23)
    elif kind == wire.MSG_RESYNC:
        assert body.records == RECORDS and body.writer_seq == 131


def test_wire_rejects_damage():
    with pytest.raises(wire.WireError):
        wire.decode_message(b"")
    with pytest.raises(wire.WireError):
        wire.decode_message(bytes([99]))
    with pytest.raises(wire.WireError):
        # HELLO truncated mid-varint.
        wire.decode_message(bytes([wire.MSG_HELLO, 0x80]))


def test_connection_frames_over_socketpair():
    left_sock, right_sock = socket.socketpair()
    left = wire.Connection(left_sock)
    right = wire.Connection(right_sock)
    try:
        for payload in MESSAGES:
            left.send(payload)
        for payload in MESSAGES:
            kind, _body = right.recv()
            assert kind == payload[0]
        assert right.bytes_received == left.bytes_sent
        # A frame split across many sends still reassembles.
        big = wire.encode_resync(wire.Resync(1, 2, RECORDS * 50))
        writer = threading.Thread(target=left.send, args=(big,))
        writer.start()
        kind, body = right.recv()
        writer.join()
        assert kind == wire.MSG_RESYNC and len(body.records) == 100
        left.close()
        with pytest.raises(wire.Disconnected):
            right.recv()
    finally:
        left.close()
        right.close()


def test_connection_rejects_oversized_frame():
    left_sock, right_sock = socket.socketpair()
    try:
        header = wire._FRAME.pack(wire.MAX_FRAME + 1, 0)
        left_sock.sendall(header)
        conn = wire.Connection(right_sock)
        with pytest.raises(wire.WireError):
            conn.recv()
    finally:
        left_sock.close()
        right_sock.close()


# -- route ledger ------------------------------------------------------------


def test_ledger_checksum_is_incremental_and_order_free():
    ledger = RouteLedger(32)
    entries = [
        RouteEntry(value=i, length=16, gateway=f"10.0.{i}.1",
                   interface=f"eth{i % 8}", seq=i + 1)
        for i in range(20)
    ]
    for entry in entries:
        ledger.set_entry(entry)
    recomputed = 0
    for entry in entries:
        recomputed ^= entry.fingerprint
    assert ledger.checksum == recomputed

    shuffled = RouteLedger(32)
    for entry in reversed(entries):
        shuffled.set_entry(entry)
    assert shuffled.checksum == ledger.checksum

    removed = entries[7]
    ledger.remove(removed.key)
    assert ledger.checksum == recomputed ^ removed.fingerprint
    # Replacing an entry swaps its fingerprint out of the XOR.
    replacement = RouteEntry(removed.value, removed.length, "10.9.9.9",
                             "eth7", 99)
    ledger.set_entry(replacement)
    assert ledger.checksum == (recomputed ^ removed.fingerprint
                               ^ replacement.fingerprint)


def test_ledger_applies_records_like_the_engine():
    table = synthetic_table(150, seed=3)
    config = _config(table)
    fib, ledger = bootstrap(table, config)
    announce = LogRecord(op=ANNOUNCE, seq=1, prefix_value=0b1010101010,
                         prefix_length=10, gateway="10.1.2.1",
                         interface="eth1")
    ledger.apply(announce)
    fib.announce(Prefix(announce.prefix_value, announce.prefix_length, 32),
                 announce.gateway, announce.interface)
    got = ledger.get((announce.prefix_value, announce.prefix_length))
    assert got is not None and got.gateway == "10.1.2.1" and got.seq == 1
    withdraw = LogRecord(op=WITHDRAW, seq=2,
                         prefix_value=announce.prefix_value,
                         prefix_length=announce.prefix_length)
    ledger.apply(withdraw)
    assert ledger.get((announce.prefix_value, announce.prefix_length)) is None


def test_canonical_image_is_arrival_order_independent():
    table = synthetic_table(200, seed=5)
    config = _config(table)
    _fib, ledger = bootstrap(table, config)
    entries = list(ledger)

    rebuilt = RouteLedger(32)
    for entry in reversed(entries):
        rebuilt.set_entry(entry)
    first = canonical_image(ledger, config)
    second = canonical_image(rebuilt, config)
    assert first.diff(second).word_count == 0

    # The canonical engine answers like any engine holding that set.
    fib = canonical_fib(ledger, config)
    for entry in entries[:20]:
        key = entry.value << (32 - entry.length)
        info = fib.forward(key)
        assert info is not None

    # And a changed set produces a different image.
    rebuilt.remove(entries[0].key)
    third = canonical_image(rebuilt, config)
    assert first.diff(third).word_count > 0


def test_ledger_record_roundtrip():
    table = synthetic_table(120, seed=9)
    _fib, ledger = bootstrap(table, _config(table))
    restored = RouteLedger.from_records(32, ledger.to_records())
    assert restored.checksum == ledger.checksum
    assert len(restored) == len(ledger)


# -- end to end --------------------------------------------------------------


def test_replicate_harness_end_to_end(tmp_path):
    """A miniature kill/corrupt/partition run must pass every gate."""
    table = synthetic_table(250, seed=11)
    report = run_replicate(
        table, _config(table), replicas=2, churn=60, catchup_k=10,
        probes=64, seed=11, workdir=str(tmp_path))
    assert report.failures == []
    assert report.converged_ok == 1.0
    assert report.divergent_answers == 0
    assert report.image_diff_words == 0
    assert report.recon_sessions >= 1 and report.resyncs == 0
    assert report.scrub_repaired >= 1
    assert 0 < report.catchup_bytes_k1 < report.checkpoint_bytes / 2
    payload = report.to_dict()
    assert payload["ok"] is True
    json.dumps(payload)  # must stay JSON-serializable for save_report


def test_replicate_cli_smoke_json():
    """The CI entry point: one tiny run through the real CLI."""
    import os

    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "replicate", "--smoke",
         "--json"],
        capture_output=True, text=True, timeout=240, env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["ok"] is True
    assert payload["traffic_advantage"] >= 2.0
    assert payload["converged_ok"] == 1.0


def test_report_failure_shape():
    report = ReplicateReport(failures=["x"])
    assert not report.ok
    assert report.to_dict()["ok"] is False
