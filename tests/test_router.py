"""Tests for the router layer: next-hop table, FIB, update feeds."""

import pytest

from repro.core import UpdateKind
from repro.router import (
    FeedSyntaxError,
    ForwardingEngine,
    NextHopInfo,
    NextHopTable,
    NextHopTableFullError,
    UpdateFeed,
    parse_line,
)


class TestNextHopTable:
    def test_interning(self):
        table = NextHopTable()
        a = table.acquire(NextHopInfo("192.0.2.1", "eth0"))
        b = table.acquire(NextHopInfo("192.0.2.1", "eth0"))
        assert a == b
        assert table.refcount(a) == 2
        assert len(table) == 1

    def test_distinct_infos_distinct_ids(self):
        table = NextHopTable()
        a = table.acquire(NextHopInfo("192.0.2.1", "eth0"))
        b = table.acquire(NextHopInfo("192.0.2.1", "eth1"))
        assert a != b

    def test_zero_id_reserved(self):
        table = NextHopTable()
        assert table.acquire(NextHopInfo("g", "i")) >= 1

    def test_release_and_reuse(self):
        table = NextHopTable()
        first = table.acquire(NextHopInfo("a", "x"))
        table.release(first)
        assert table.resolve(first) is None
        second = table.acquire(NextHopInfo("b", "y"))
        assert second == first  # freed slot reused

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            NextHopTable().release(5)

    def test_capacity_enforced(self):
        table = NextHopTable(id_bits=2)  # capacity 3
        for index in range(3):
            table.acquire(NextHopInfo(f"g{index}", "i"))
        with pytest.raises(NextHopTableFullError):
            table.acquire(NextHopInfo("overflow", "i"))

    def test_resolve(self):
        table = NextHopTable()
        info = NextHopInfo("203.0.113.1", "ge-0/0/0")
        assert table.resolve(table.acquire(info)) == info
        assert str(info) == "via 203.0.113.1 dev ge-0/0/0"


class TestForwardingEngine:
    @pytest.fixture
    def fib(self):
        fib = ForwardingEngine()
        fib.announce("0.0.0.0/0", "192.0.2.254", "uplink")
        fib.announce("10.0.0.0/8", "10.255.0.1", "core0")
        fib.announce("10.1.0.0/16", "10.255.0.2", "core1")
        return fib

    def test_forwarding_decisions(self, fib):
        assert fib.forward("10.1.2.3") == NextHopInfo("10.255.0.2", "core1")
        assert fib.forward("10.9.9.9") == NextHopInfo("10.255.0.1", "core0")
        assert fib.forward("8.8.8.8") == NextHopInfo("192.0.2.254", "uplink")

    def test_withdraw_falls_back(self, fib):
        fib.withdraw("10.1.0.0/16")
        assert fib.forward("10.1.2.3") == NextHopInfo("10.255.0.1", "core0")

    def test_next_hop_refcounting(self, fib):
        assert len(fib.next_hops) == 3
        fib.withdraw("10.1.0.0/16")
        assert len(fib.next_hops) == 2  # core1's only reference dropped

    def test_reannounce_changes_next_hop(self, fib):
        fib.announce("10.1.0.0/16", "10.255.0.9", "core9")
        assert fib.forward("10.1.2.3") == NextHopInfo("10.255.0.9", "core9")
        assert len(fib.next_hops) == 3  # old core1 released

    def test_shared_next_hop_survives_one_withdraw(self):
        fib = ForwardingEngine()
        fib.announce("10.0.0.0/8", "gw", "if")
        fib.announce("11.0.0.0/8", "gw", "if")
        fib.withdraw("10.0.0.0/8")
        assert fib.forward("11.0.0.1") == NextHopInfo("gw", "if")

    def test_route_for_exact(self, fib):
        assert fib.route_for("10.0.0.0/8") == NextHopInfo("10.255.0.1", "core0")
        assert fib.route_for("10.0.0.0/9") is None

    def test_auto_purge_threshold(self):
        # Prefixes in distinct /15 blocks: each withdrawal empties its own
        # collapsed bucket, so the dirty population grows one per withdraw.
        fib = ForwardingEngine(dirty_purge_threshold=3)
        for index in range(8):
            fib.announce(f"10.{2 * index}.0.0/16", "gw", "if")
        for index in range(8):
            fib.withdraw(f"10.{2 * index}.0.0/16")
        assert fib.purges_run >= 1
        assert fib.stats().dirty_entries < 3

    def test_stats(self, fib):
        stats = fib.stats()
        assert stats.routes == 3
        assert stats.next_hops == 3
        assert stats.words_pushed > 0

    def test_update_stats_accumulate(self, fib):
        assert fib.update_stats.applied >= 3
        fib.withdraw("10.1.0.0/16")
        assert fib.update_stats.counts[UpdateKind.WITHDRAW] == 1


class TestUpdateFeed:
    FEED = """
    # morning churn
    announce 10.0.0.0/8 via 192.0.2.1 dev eth0
    announce 10.1.0.0/16 via 192.0.2.2 dev eth1

    withdraw 10.1.0.0/16
    """

    def test_parse_and_apply(self):
        feed = UpdateFeed.parse(self.FEED)
        assert len(feed) == 3
        fib = ForwardingEngine()
        assert feed.apply(fib) == 3
        assert fib.forward("10.1.2.3") == NextHopInfo("192.0.2.1", "eth0")

    def test_render_roundtrip(self):
        feed = UpdateFeed.parse(self.FEED)
        again = UpdateFeed.parse(feed.render())
        assert [e.render() for e in again] == [e.render() for e in feed]

    def test_parse_line_blank_and_comment(self):
        assert parse_line("") is None
        assert parse_line("   # note") is None

    def test_ipv6_prefixes(self):
        event = parse_line("announce 2001:db8::/32 via fe80::1 dev eth0")
        assert event.prefix.width == 128

    def test_syntax_errors(self):
        bad_lines = [
            "announce 10.0.0.0/8",                      # missing via/dev
            "announce 10.0.0.0/8 by 1.2.3.4 dev e0",    # wrong keyword
            "withdraw",                                  # missing prefix
            "withdraw 10.0.0.0/8 extra",                 # trailing token
            "flap 10.0.0.0/8",                           # unknown op
            "withdraw not-a-prefix",                     # bad prefix
        ]
        for line in bad_lines:
            with pytest.raises(FeedSyntaxError):
                parse_line(line, 1)

    def test_error_reports_line_number(self):
        with pytest.raises(FeedSyntaxError) as info:
            UpdateFeed.parse("announce 10.0.0.0/8 via 1.1.1.1 dev e0\nbogus")
        assert info.value.line_number == 2
