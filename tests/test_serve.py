"""Tests for the snapshot-serving layer (``repro.serve``).

The acceptance property: a ``SnapshotRouter`` interleaving batched
lookups with announce/withdraw churn never serves a stale withdrawn
route and never misses an announced route — the overlay covers the
whole recompile window.
"""

import random

import numpy as np
import pytest

from repro.analysis.report import format_metrics
from repro.core.batch import BatchLookup
from repro.core.updates import ANNOUNCE
from repro.router import ForwardingEngine, NextHopInfo
from repro.serve import RecompilePolicy, SnapshotRouter
from repro.workloads import synthetic_table
from repro.workloads.traces import synthesize_trace


def build_router(table_size=1500, seed=11, **policy_kwargs):
    table = synthetic_table(table_size, seed=seed)
    fib = ForwardingEngine.from_table(table)
    policy = RecompilePolicy(**policy_kwargs) if policy_kwargs else None
    return table, fib, SnapshotRouter(fib, policy)


def scalar_answers(fib, keys):
    lookup = fib.engine.lookup
    return [lookup(int(key)) for key in keys]


class TestServingCorrectness:
    def test_snapshot_matches_scalar_at_rest(self):
        _table, fib, router = build_router()
        rng = random.Random(1)
        keys = [rng.getrandbits(32) for _ in range(3000)]
        assert router.lookup_many(keys) == scalar_answers(fib, keys)

    def test_trace_driven_churn_under_load(self):
        """The acceptance test: trace-driven interleaving of lookups and
        updates, verified against the live scalar path at every step."""
        table, fib, router = build_router(
            table_size=1200, seed=12, max_overlay=24, max_age=1e9
        )
        trace = synthesize_trace(table, 400, seed=12)
        rng = random.Random(12)
        background = [rng.getrandbits(32) for _ in range(400)]
        recompiles_before = router.metrics.snapshots_compiled
        for start in range(0, len(trace), 8):
            window = trace[start:start + 8]
            targeted = []
            for op in window:
                prefix = op.prefix
                if op.op == ANNOUNCE:
                    router.announce(prefix, f"10.9.{op.next_hop % 256}.1",
                                    f"eth{op.next_hop % 8}")
                else:
                    router.withdraw(prefix)
                free = 32 - prefix.length
                targeted.append(prefix.network_int()
                                | (rng.getrandbits(free) if free else 0))
            keys = background + targeted
            assert router.lookup_many(keys) == scalar_answers(fib, keys), \
                f"divergence in window starting at {start}"
            router.maybe_recompile()
        # The small overlay cap forced snapshot swaps mid-trace, so the
        # run exercised serving windows both before and after swaps.
        assert router.metrics.snapshots_compiled > recompiles_before
        assert router.metrics.overlay_lookups > 0

    def test_withdrawn_route_never_served(self):
        table, fib, router = build_router(seed=13)
        prefix = next(iter(table.prefixes()))
        free = 32 - prefix.length
        key = prefix.network_int() | ((1 << free) - 1 if free else 0)
        before = router.lookup_many([key])[0]
        router.withdraw(prefix)
        after = router.lookup_many([key])[0]
        assert after == fib.engine.lookup(key)
        assert after != before or fib.engine.lookup(key) == before

    def test_announced_route_visible_immediately(self):
        _table, fib, router = build_router(seed=14)
        router.announce("198.51.100.0/24", "203.0.113.99", "eth7")
        key = (198 << 24) | (51 << 16) | (100 << 8) | 42
        [info] = router.forward_batch([key])
        assert info == NextHopInfo("203.0.113.99", "eth7")

    def test_serving_across_purge_window(self):
        """Withdrawals that trip the engine's dirty purge mid-window must
        not desynchronize the snapshot."""
        table, fib, router = build_router(seed=15)
        fib.dirty_purge_threshold = 8  # purge aggressively
        rng = random.Random(15)
        keys = [rng.getrandbits(32) for _ in range(500)]
        for prefix in list(table.prefixes())[:60]:
            router.withdraw(prefix)
            assert router.lookup_many(keys[:50]) == scalar_answers(
                fib, keys[:50])
        assert fib.purges_run > 0
        assert router.lookup_many(keys) == scalar_answers(fib, keys)

    def test_verify_sample_detects_divergence(self):
        _table, fib, router = build_router(seed=16)
        rng = random.Random(16)
        keys = [rng.getrandbits(32) for _ in range(200)]
        assert router.verify_sample(keys) == len(keys)
        # Corrupt the snapshot's Result-Table copy: divergence must raise.
        hits = router.lookup_batch(keys)
        assert (hits != -1).any()
        for plan in router._snapshot._plans:
            plan.arena = plan.arena + 7
        with pytest.raises(AssertionError):
            router.verify_sample(keys)


class TestSnapshotLifecycle:
    def test_overlay_clears_on_recompile(self):
        _table, fib, router = build_router(seed=21, max_overlay=10**6,
                                           max_age=1e9)
        router.announce("192.0.2.0/24", "10.0.0.1", "eth0")
        router.withdraw("192.0.2.0/24")
        assert router.overlay_size == 1  # same prefix twice: exact dict
        assert router.metrics.updates_since_snapshot == 2
        router.recompile()
        assert router.overlay_size == 0
        assert router.metrics.updates_since_snapshot == 0
        assert router.metrics.last_updates_absorbed == 2
        assert not router._snapshot.stale

    def test_policy_overlay_threshold(self):
        _table, fib, router = build_router(seed=22, max_overlay=4,
                                           max_age=1e9)
        compiled = router.metrics.snapshots_compiled
        for octet in range(4):
            router.announce(f"192.0.{octet}.0/24", "10.0.0.1", "eth0")
            router.maybe_recompile()
        assert router.metrics.snapshots_compiled == compiled + 1

    def test_policy_age_threshold_with_fake_clock(self):
        table = synthetic_table(300, seed=23)
        fib = ForwardingEngine.from_table(table)
        now = [0.0]
        router = SnapshotRouter(
            fib, RecompilePolicy(max_overlay=10**6, max_age=2.0),
            clock=lambda: now[0],
        )
        router.announce("192.0.2.0/24", "10.0.0.1", "eth0")
        assert not router.maybe_recompile()  # young snapshot
        now[0] = 5.0
        assert router.snapshot_age == pytest.approx(5.0)
        assert router.maybe_recompile()  # old + dirty
        now[0] = 20.0
        assert not router.maybe_recompile()  # old but nothing changed

    def test_background_recompiler_thread(self):
        import time

        _table, fib, router = build_router(seed=24, max_overlay=1,
                                           max_age=1e9)
        compiled = router.metrics.snapshots_compiled
        with router:
            router.announce("192.0.2.0/24", "10.0.0.1", "eth0")
            deadline = time.monotonic() + 5.0
            while (router.metrics.snapshots_compiled == compiled
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert router.metrics.snapshots_compiled > compiled
        assert router.overlay_size == 0
        assert router._thread is None  # stopped cleanly

    def test_lookups_while_background_thread_runs(self):
        table, fib, router = build_router(seed=25, max_overlay=8,
                                          max_age=0.01)
        rng = random.Random(25)
        prefixes = list(table.prefixes())
        keys = [rng.getrandbits(32) for _ in range(300)]
        with router:
            for _ in range(50):
                prefix = prefixes[rng.randrange(len(prefixes))]
                if rng.random() < 0.5:
                    router.withdraw(prefix)
                else:
                    router.announce(prefix, "10.1.2.3", "eth1")
                assert router.lookup_many(keys[:40]) == scalar_answers(
                    fib, keys[:40])


class TestMetrics:
    def test_metrics_dict_and_report(self):
        _table, fib, router = build_router(seed=31)
        rng = random.Random(31)
        router.announce("192.0.2.0/24", "10.0.0.1", "eth0")
        router.lookup_batch([rng.getrandbits(32) for _ in range(100)])
        payload = router.metrics_dict()
        for field in ("lookups_served", "batches_served", "overlay_lookups",
                      "updates_applied", "snapshots_compiled",
                      "last_recompile_seconds", "snapshot_age_seconds",
                      "overlay_size", "snapshot_stale", "routes",
                      "mean_updates_absorbed", "overlay_fraction"):
            assert field in payload
        assert payload["lookups_served"] == 100
        assert payload["updates_applied"] == 1
        assert payload["overlay_size"] == 1
        text = format_metrics(payload, title="serve metrics")
        assert "lookups_served" in text and "serve metrics" in text

    def test_overlay_fraction_counts_fallbacks(self):
        _table, fib, router = build_router(seed=32)
        router.announce("203.0.113.0/24", "10.0.0.9", "eth3")
        key = (203 << 24) | (0 << 16) | (113 << 8) | 5
        router.lookup_batch([key] * 10)
        assert router.metrics.overlay_lookups == 10
        assert router.metrics.overlay_fraction == 1.0

    def test_updates_absorbed_accounting(self):
        _table, fib, router = build_router(seed=33)
        for octet in range(6):
            router.announce(f"198.18.{octet}.0/24", "10.0.0.1", "eth0")
        router.recompile()
        for octet in range(4):
            router.announce(f"198.19.{octet}.0/24", "10.0.0.1", "eth0")
        router.recompile()
        metrics = router.metrics
        assert metrics.total_updates_absorbed == 10
        assert metrics.last_updates_absorbed == 4
        # Initial compile + 2 explicit swaps.
        assert metrics.snapshots_compiled == 3
        assert metrics.mean_updates_absorbed == pytest.approx(10 / 3)


class TestLockFreeRecompile:
    """The recompile path compiles outside the update lock and retries
    when churn lands mid-compile (the lock-stall fix)."""

    def test_retry_when_update_lands_mid_compile(self, monkeypatch):
        from repro.obs import get_registry
        from repro.serve import snapshot as snapshot_module

        _table, fib, router = build_router(table_size=300, seed=51)
        registry = get_registry()
        retries_before = registry.value("serve_recompile_retries_total")

        real_compile = snapshot_module.BatchLookup
        compiles = []

        def racing_compile(engine):
            built = real_compile(engine)
            compiles.append(True)
            if len(compiles) == 1:
                # An update lands while the (lock-free) compile runs: the
                # optimistic snapshot is torn and must be discarded.
                fib.announce("198.51.100.0/24", "10.0.0.7", "eth2")
            return built

        monkeypatch.setattr(snapshot_module, "BatchLookup", racing_compile)
        router.recompile()
        assert len(compiles) == 2, "discarded snapshot was not recompiled"
        assert (registry.value("serve_recompile_retries_total")
                - retries_before) == 1
        assert not router._snapshot.stale, (
            "the swapped snapshot must reflect the mid-compile update"
        )
        # And the served answer includes the route that landed mid-compile.
        key = (198 << 24) | (51 << 16) | (100 << 8) | 9
        assert router.lookup_many([key])[0] is not None

    def test_lock_hold_histogram_stays_microseconds(self):
        from repro.obs import get_registry

        _table, fib, router = build_router(table_size=2000, seed=52)
        rng = random.Random(52)
        hold = get_registry().get("serve_lock_hold_seconds")
        count_before = hold.count
        for octet in range(8):
            router.announce(f"198.18.{octet}.0/24", "10.0.0.1", "eth0")
        router.lookup_batch([rng.getrandbits(32) for _ in range(5000)])
        router.recompile()
        assert hold.count > count_before
        # The compile itself runs outside the lock, so even with the
        # recompile in the window no hold approaches the ~100ms compile
        # cost; 5ms is the ISSUE's p99 budget.
        assert hold.quantile(0.99) < 0.005


class TestBulkLoad:
    def test_from_table_matches_incremental(self):
        table = synthetic_table(200, seed=41)
        bulk = ForwardingEngine.from_table(table)
        assert len(bulk) == len(table)
        rng = random.Random(41)
        keys = [rng.getrandbits(32) for _ in range(500)]
        # Bulk-loaded decisions agree with a direct engine over the table.
        from repro.core import ChiselLPM
        reference = ChiselLPM.build(table)
        for key in keys:
            want = reference.lookup(key)
            got = bulk.engine.lookup(key)
            assert (got is None) == (want is None)
            if want is not None:
                assert bulk.next_hops.resolve(got) is not None

    def test_from_table_next_hop_refcounts(self):
        table = synthetic_table(150, seed=42)
        fib = ForwardingEngine.from_table(table)
        prefix = next(iter(table.prefixes()))
        info = fib.route_for(prefix)
        assert info is not None
        fib.withdraw(prefix)
        assert fib.route_for(prefix) is None
