"""Tests for the multi-process sharded serving plane (``repro.shard``).

The acceptance properties:

* **differential**: a ``ShardCoordinator`` fleet answers exactly like the
  single-process ``SnapshotRouter`` it wraps, over churn, for every
  worker count and both partition policies;
* **fence**: a worker never serves a generation older than the one
  current at dispatch, worker-observed generations are monotone
  (hypothesis property over the control block), and retired segments are
  really gone;
* **crash recovery**: a killed worker is respawned and re-attaches the
  *current* generation, never a stale one, without dropping a batch;
* **publish safety** (the PR's bugfix): a scrub that repairs words while
  a generation export is in flight forces the optimistic re-check to
  discard that export — a half-repaired image is never published.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.updates import ANNOUNCE
from repro.faults import FaultInjector
from repro.router import ForwardingEngine
from repro.serve import RecompilePolicy, SnapshotRouter
from repro.shard import (
    ControlBlock,
    ControlBlockError,
    ShardCoordinator,
    SharedSnapshot,
    SnapshotIntegrityError,
)
from repro.shard.codec import table_digest
from repro.workloads import synthetic_table
from repro.workloads.traces import synthesize_trace


def build_router(table_size=1200, seed=21, **policy_kwargs):
    table = synthetic_table(table_size, seed=seed)
    fib = ForwardingEngine.from_table(table)
    policy = RecompilePolicy(**policy_kwargs) if policy_kwargs else None
    return table, fib, SnapshotRouter(fib, policy)


def churn(router, trace, start, count):
    for op in trace[start:start + count]:
        if op.op == ANNOUNCE:
            router.announce(op.prefix, f"10.9.{op.next_hop % 256}.1",
                            f"eth{op.next_hop % 8}")
        else:
            router.withdraw(op.prefix)


def random_keys(width, count, seed=0):
    rng = random.Random(seed)
    return np.array([rng.getrandbits(width) for _ in range(count)],
                    dtype=np.uint64)


class TestSnapshotCodec:
    def test_roundtrip_lookup_equality(self):
        table, _fib, router = build_router()
        keys = random_keys(table.width, 4000)
        segment = SharedSnapshot.export(
            router._snapshot, router.overlay_arrays(), 7)
        try:
            attached = SharedSnapshot.attach(segment.name)
            assert attached.generation == 7
            assert np.array_equal(
                attached.to_lookup().lookup_batch(keys),
                router._snapshot.lookup_batch(keys),
            )
            attached.close()
        finally:
            segment.retire()

    def test_overlay_arrays_roundtrip(self):
        table, _fib, router = build_router(max_overlay=1_000_000,
                                           max_age=1e9)
        trace = synthesize_trace(table, 40, seed=21)
        churn(router, trace, 0, 40)
        overlay = router.overlay_arrays()
        assert overlay, "churn should have dirtied the overlay"
        segment = SharedSnapshot.export(router._snapshot, overlay, 1)
        try:
            attached = SharedSnapshot.attach(segment.name)
            decoded = attached.overlay_arrays()
            assert [length for length, _values in decoded] == \
                [length for length, _values in overlay]
            for (_l1, mine), (_l2, theirs) in zip(overlay, decoded):
                assert np.array_equal(np.asarray(mine, dtype=np.uint64),
                                      theirs)
            attached.close()
        finally:
            segment.retire()

    def test_corruption_is_detected(self):
        _table, _fib, router = build_router()
        segment = SharedSnapshot.export(router._snapshot, [], 1)
        try:
            # Flip one payload byte behind the checksums' back.
            offset = segment._payload_start + 12345
            segment._shm.buf[offset] ^= 0xFF
            with pytest.raises(SnapshotIntegrityError):
                segment.verify()
            with pytest.raises(SnapshotIntegrityError):
                SharedSnapshot.attach(segment.name, verify=True)
        finally:
            segment.retire()

    def test_table_digest_is_position_sensitive(self):
        words = np.arange(16, dtype=np.uint64)
        swapped = words.copy()
        swapped[[0, 1]] = swapped[[1, 0]]
        assert table_digest(words) != table_digest(swapped)

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedSnapshot.attach("chisel-no-such-segment")


class TestDifferentialSharding:
    @pytest.mark.parametrize("policy", ["round-robin", "hash"])
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_sharded_equals_single_process_over_churn(
            self, policy, workers):
        """The tentpole gate: every worker count, both policies, zero
        divergences from the single-process router while churn flows and
        generations swap underneath."""
        table, _fib, router = build_router(max_overlay=16, max_age=1e9)
        trace = synthesize_trace(table, 120, seed=22)
        keys = random_keys(table.width, 2500, seed=22)
        with ShardCoordinator(router, workers=workers,
                              policy=policy) as coordinator:
            for round_index in range(6):
                churn(router, trace, round_index * 20, 20)
                sharded = coordinator.lookup_batch(keys)
                single = router.lookup_batch(keys)
                assert np.array_equal(sharded, single), (
                    f"{policy}/{workers}w diverged on round {round_index}"
                )
                coordinator.maybe_publish()
            # Worker-observed generations are monotone per worker.
            for history in coordinator.generation_history.values():
                assert history == sorted(history)
            assert coordinator.generation >= 1

    def test_partitions_cover_batch_exactly_once(self):
        _table, _fib, router = build_router(table_size=600)
        keys = random_keys(32, 999, seed=3)
        for policy in ("round-robin", "hash"):
            with ShardCoordinator(router, workers=3,
                                  policy=policy) as coordinator:
                parts = coordinator._partition(keys)
                merged = np.sort(np.concatenate(parts))
                assert np.array_equal(merged, np.arange(len(keys)))


class TestGenerationFence:
    def test_publish_retires_previous_segment(self):
        table, _fib, router = build_router(max_overlay=1_000_000,
                                           max_age=1e9)
        trace = synthesize_trace(table, 30, seed=23)
        with ShardCoordinator(router, workers=2) as coordinator:
            first_name = coordinator._segment.name
            churn(router, trace, 0, 30)
            coordinator.publish()
            assert coordinator.generation == 2
            assert coordinator.worker_acks() == [2, 2]
            # The fence completed, so generation 1's segment is gone.
            with pytest.raises(FileNotFoundError):
                SharedSnapshot.attach(first_name)

    def test_worker_crash_recovery(self):
        """A killed worker is respawned mid-batch and the batch still
        completes, with the respawned worker on the current generation."""
        table, _fib, router = build_router(max_overlay=1_000_000,
                                           max_age=1e9)
        trace = synthesize_trace(table, 30, seed=24)
        keys = random_keys(table.width, 2000, seed=24)
        with ShardCoordinator(router, workers=2) as coordinator:
            assert np.array_equal(coordinator.lookup_batch(keys),
                                  router.lookup_batch(keys))
            churn(router, trace, 0, 30)
            coordinator.publish()
            victim = coordinator._processes[0]
            victim.terminate()
            victim.join(timeout=5)
            respawns_before = coordinator._obs_respawns.value
            sharded = coordinator.lookup_batch(keys)
            assert np.array_equal(sharded, router.lookup_batch(keys))
            assert coordinator._obs_respawns.value > respawns_before
            assert coordinator._processes[0].pid != victim.pid
            assert coordinator._processes[0].is_alive()
            # The respawned worker attached the *current* generation.
            deadline_acks = coordinator.worker_acks()
            assert all(ack == coordinator.generation
                       for ack in deadline_acks), deadline_acks

    def test_control_block_rejects_stale_generation(self):
        with ControlBlock.create(workers=2) as control:
            control.publish(3, "seg-3")
            with pytest.raises(ControlBlockError):
                control.publish(3, "seg-3-again")
            with pytest.raises(ControlBlockError):
                control.publish(2, "seg-2")

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9),
                    min_size=1, max_size=8))
    def test_control_block_reads_are_monotone(self, increments):
        """Hypothesis property: generations observed through the seqlock
        read path are monotone and always paired with their own segment
        name, for any publish cadence."""
        with ControlBlock.create(workers=1) as control:
            observed = []
            generation = 0
            for step in increments:
                generation += step
                control.publish(generation, f"segment-{generation}")
                seen_generation, seen_name, _state = control.read()
                observed.append(seen_generation)
                assert seen_name == f"segment-{seen_generation}"
                control.ack(0, seen_generation)
                assert control.all_acked(seen_generation)
            assert observed == sorted(observed)
            assert observed[-1] == generation


class TestPublishSafety:
    def test_scrub_during_export_never_publishes_half_repaired_image(self):
        """The bugfix regression: a scrub repairing words while the
        segment export is in flight bumps ``words_written``, so the
        optimistic re-check discards that export and retries; the
        generation that lands is compiled after the repair and matches
        the live engine exactly."""
        table, fib, router = build_router(max_overlay=1_000_000,
                                          max_age=1e9)
        trace = synthesize_trace(table, 20, seed=25)
        keys = random_keys(table.width, 3000, seed=25)
        injector = FaultInjector(seed=25)
        with ShardCoordinator(router, workers=1) as coordinator:
            churn(router, trace, 0, 20)
            fired = {"count": 0}

            def scrub_mid_export():
                if fired["count"]:
                    return
                fired["count"] += 1
                # A soft error lands in a hardware table and the scrubber
                # repairs it while the export is being cut.
                record = injector.flip_table_bit(fib.engine)
                assert record is not None
                report = fib.engine.scrub()
                assert report.repaired, "the injected fault must be repaired"

            coordinator._export_hook = scrub_mid_export
            discards_before = coordinator._obs_discards.value
            generation_before = coordinator.generation
            coordinator.publish()
            assert fired["count"] == 1
            assert coordinator.generation == generation_before + 1
            assert coordinator._obs_discards.value > discards_before, (
                "the mid-export scrub must force the optimistic re-check "
                "to discard the first export"
            )
            # The published segment is whole: checksums verify and its
            # answers match the live (repaired) engine exactly.
            attached = SharedSnapshot.attach(coordinator._segment.name,
                                             verify=True)
            assert np.array_equal(
                attached.to_lookup().lookup_batch(keys),
                router.lookup_batch(keys),
            )
            attached.close()

    def test_degraded_router_serves_through_fallback(self):
        """While the router is degraded the coordinator stops dispatching
        to workers and the answers still match the exact path."""
        table, _fib, router = build_router(max_overlay=1_000_000,
                                           max_age=1e9)
        keys = random_keys(table.width, 1500, seed=26)
        with ShardCoordinator(router, workers=2) as coordinator:
            baseline = coordinator.lookup_batch(keys)
            with router._lock:
                router._degrade("test: forced degradation")
            batches_before = coordinator._obs_batches.value
            degraded = coordinator.lookup_batch(keys)
            assert np.array_equal(degraded, baseline)
            # Served through the router fallback, not the shard fleet.
            assert coordinator._obs_batches.value == batches_before
