"""Shared-memory lifecycle hardening for the shard plane.

Two failure modes this file pins down:

* **Stranded segments** — a coordinator killed before ``close()`` used
  to leave its segments (and control block) in ``/dev/shm`` forever.
  Segments now carry ``chz-<pid>-<nonce>-<tag>`` names, the coordinator
  registers an ``atexit`` hook, and startup reaps any segment whose
  owning pid is dead (``repro.shard.names``).
* **Attach races** — a worker attaching mid-publish can see the named
  segment vanish (``FileNotFoundError``) or fail checksum verification
  (``SnapshotIntegrityError``) because the coordinator's ack-fenced
  retirement unlinked it.  The worker retries with bounded exponential
  backoff against the *current* control-block generation instead of
  crashing.
"""

import multiprocessing
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.router import ForwardingEngine
from repro.serve import SnapshotRouter
from repro.shard.codec import SharedSnapshot, SnapshotIntegrityError
from repro.shard.control import ControlBlock
from repro.shard.coordinator import ShardCoordinator
from repro.shard.names import (
    SEGMENT_PREFIX,
    fresh_nonce,
    reap_stale_segments,
    segment_name,
)
from repro.shard.worker import _WorkerRuntime
from repro.workloads import synthetic_table

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="needs a POSIX /dev/shm to observe segment lifetimes",
)


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry: coordinator construction registers shard
    gauges whose values other modules assert over."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def our_segments(pid=None):
    pid_pattern = str(pid) if pid is not None else r"\d+"
    pattern = re.compile(rf"^{SEGMENT_PREFIX}-{pid_pattern}-")
    return sorted(
        name for name in os.listdir(SHM_DIR) if pattern.match(name)
    )


def build_router(size=200, seed=17):
    fib = ForwardingEngine.from_table(synthetic_table(size, seed=seed))
    return SnapshotRouter(fib)


#: Subprocess body shared by the lifecycle tests below.  These must run
#: in a *real* interpreter (not a multiprocessing child): a forked
#: ``Process`` exits through ``_bootstrap`` without running ``atexit``
#: hooks, and its daemon workers would inherit pytest's capture pipes.
_COORDINATOR_SCRIPT = """
import os, signal
from repro.router import ForwardingEngine
from repro.serve import SnapshotRouter
from repro.shard.coordinator import ShardCoordinator
from repro.workloads import synthetic_table

fib = ForwardingEngine.from_table(synthetic_table(120, seed=17))
coordinator = ShardCoordinator(SnapshotRouter(fib), workers=1)
{ending}
"""


def run_coordinator_subprocess(ending):
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-c", _COORDINATOR_SCRIPT.format(ending=ending)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        returncode = process.wait(timeout=120)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        raise
    return process.pid, returncode


class TestNames:
    def test_segment_name_shape(self):
        nonce = fresh_nonce()
        name = segment_name("g7", nonce)
        assert name == f"chz-{os.getpid()}-{nonce}-g7"
        # macOS caps shm names at 31 bytes (PSHMNAMLEN); stay under it.
        assert len(name) <= 31

    def test_reap_ignores_live_and_foreign(self, tmp_path):
        shm_dir = tmp_path
        live = f"chz-{os.getpid()}-deadbeef-g1"
        foreign = "psm_something_else"
        for name in (live, foreign):
            (shm_dir / name).write_bytes(b"x")
        removed = reap_stale_segments(str(shm_dir))
        assert removed == []
        assert sorted(p.name for p in shm_dir.iterdir()) == sorted(
            [live, foreign])

    def test_reap_removes_dead_pid_segments(self, tmp_path):
        # Grab a pid that is certainly dead: fork a child and wait it out.
        child = multiprocessing.get_context("fork").Process(target=lambda: None)
        child.start()
        dead_pid = child.pid
        child.join()
        stale = f"chz-{dead_pid}-cafef00d-g3"
        (tmp_path / stale).write_bytes(b"x")
        removed = reap_stale_segments(str(tmp_path))
        assert removed == [stale]
        assert not (tmp_path / stale).exists()


class TestCoordinatorLifecycle:
    def test_close_leaves_no_segments(self):
        before = our_segments(os.getpid())
        coordinator = ShardCoordinator(build_router(), workers=1)
        assert len(our_segments(os.getpid())) > len(before)
        coordinator.close()
        assert our_segments(os.getpid()) == before

    def test_killed_coordinator_is_reaped_on_next_start(self):
        """A SIGKILLed coordinator leaves segments; the next coordinator
        start (or an explicit reap) removes them by dead-pid scan."""
        pid, returncode = run_coordinator_subprocess(
            "os.kill(os.getpid(), signal.SIGKILL)")
        assert returncode == -signal.SIGKILL
        stranded = our_segments(pid)
        assert stranded, "the killed coordinator should strand segments"
        removed = reap_stale_segments()
        assert set(stranded) <= set(removed)
        assert our_segments(pid) == []

    def test_atexit_cleanup_on_interpreter_exit(self):
        """A coordinator alive at normal interpreter exit is closed by
        the atexit hook — nothing left in /dev/shm."""
        pid, returncode = run_coordinator_subprocess(
            "pass  # fall off the end: interpreter exit runs atexit")
        assert returncode == 0
        assert our_segments(pid) == []


class TestWorkerAttachRetry:
    def test_attach_retries_through_transient_failures(self, monkeypatch):
        """Regression: FileNotFoundError and SnapshotIntegrityError during
        attach are transients of ack-fenced retirement, not crashes."""
        router = build_router(size=120)
        with router._lock:
            snapshot = router._snapshot
        nonce = fresh_nonce()
        segment = SharedSnapshot.export(snapshot, [], 1,
                                        name=segment_name("t1", nonce))
        control = ControlBlock.create(1, name=segment_name("tc", nonce))
        try:
            control.publish(1, segment.name)
            runtime = _WorkerRuntime(0, ControlBlock.attach(control.name))
            real_attach = SharedSnapshot.attach.__func__
            failures = iter([
                FileNotFoundError("segment retired under us"),
                SnapshotIntegrityError("superseded mid-verify"),
                ValueError("zero-size map during teardown"),
            ])

            def flaky(cls, name, verify=True):
                try:
                    raise next(failures)
                except StopIteration:
                    return real_attach(cls, name, verify=verify)

            monkeypatch.setattr(SharedSnapshot, "attach",
                                classmethod(flaky))
            monkeypatch.setattr(
                "repro.shard.worker._ATTACH_BACKOFF_FLOOR", 0.0001)
            lookup = runtime.ensure_current()
            assert runtime.generation == 1
            assert lookup is not None
            runtime.close()
        finally:
            segment.retire()
            control.close()

    def test_attach_exhaustion_still_raises(self, monkeypatch):
        router = build_router(size=120)
        with router._lock:
            snapshot = router._snapshot
        nonce = fresh_nonce()
        segment = SharedSnapshot.export(snapshot, [], 1,
                                        name=segment_name("t2", nonce))
        control = ControlBlock.create(1, name=segment_name("td", nonce))
        try:
            control.publish(1, segment.name)
            runtime = _WorkerRuntime(0, ControlBlock.attach(control.name))

            def always_gone(cls, name, verify=True):
                raise FileNotFoundError("never comes back")

            monkeypatch.setattr(SharedSnapshot, "attach",
                                classmethod(always_gone))
            monkeypatch.setattr(
                "repro.shard.worker._ATTACH_BACKOFF_FLOOR", 0.0)
            monkeypatch.setattr(
                "repro.shard.worker._ATTACH_BACKOFF_CAP", 0.0)
            monkeypatch.setattr("repro.shard.worker._ATTACH_RETRIES", 5)
            with pytest.raises(RuntimeError, match="could not attach"):
                runtime.ensure_current()
            runtime.close()
        finally:
            segment.retire()
            control.close()
