"""Tests for the architectural simulator (memory banks, pipeline, runs)."""

import random

import pytest

from repro.core import ChiselConfig, ChiselLPM
from repro.simulator import (
    ChiselSimulator,
    LookupPipeline,
    MemoryBank,
    MemorySystem,
    PipelineStage,
)

from .conftest import sample_keys


class TestMemoryBank:
    def test_size_and_counters(self):
        bank = MemoryBank("t", depth=1024, width_bits=16)
        assert bank.size_bits == 16_384
        bank.read()
        bank.read()
        bank.write()
        assert (bank.reads, bank.writes, bank.accesses) == (2, 1, 3)

    def test_on_chip_faster_than_off_chip(self):
        on = MemoryBank("on", 4096, 32, on_chip=True)
        off = MemoryBank("off", 4096, 32, on_chip=False)
        assert on.access_time_ns() < off.access_time_ns()

    def test_energy_accumulates(self):
        bank = MemoryBank("t", 1 << 20, 32)
        assert bank.dynamic_energy_joules() == 0.0
        bank.read()
        assert bank.dynamic_energy_joules() > 0.0

    def test_bigger_banks_slower(self):
        small = MemoryBank("s", 1 << 10, 16)
        large = MemoryBank("l", 1 << 22, 16)
        assert large.access_time_ns() > small.access_time_ns()


class TestMemorySystem:
    def test_rollups(self):
        system = MemorySystem()
        system.add(MemoryBank("a", 100, 10, on_chip=True))
        system.add(MemoryBank("b", 100, 10, on_chip=False))
        assert system.on_chip_bits() == 1000
        assert system.off_chip_bits() == 1000

    def test_access_counts_grouped_by_name(self):
        system = MemorySystem()
        a1 = system.add(MemoryBank("index", 10, 8))
        a2 = system.add(MemoryBank("index", 10, 8))
        a1.read()
        a2.read()
        assert system.access_counts()["index"] == 2

    def test_reset(self):
        system = MemorySystem()
        bank = system.add(MemoryBank("x", 10, 8))
        bank.read()
        system.reset_counters()
        assert bank.accesses == 0


class TestPipeline:
    def test_cycle_is_slowest_stage(self):
        fast = PipelineStage("fast", (), logic_ns=0.5)
        slow = PipelineStage("slow", (MemoryBank("m", 1 << 22, 32),))
        pipeline = LookupPipeline([fast, slow])
        assert pipeline.cycle_time_ns() == pytest.approx(slow.stage_time_ns())
        assert pipeline.latency_ns() == pytest.approx(
            fast.stage_time_ns() + slow.stage_time_ns()
        )

    def test_throughput_inverse_of_cycle(self):
        pipeline = LookupPipeline([PipelineStage("s", (), logic_ns=5.0)])
        assert pipeline.throughput_sps() == pytest.approx(200e6)

    def test_describe(self):
        pipeline = LookupPipeline([
            PipelineStage("read", (MemoryBank("m", 64, 8),)),
        ])
        rows = pipeline.describe()
        assert rows[0]["stage"] == "read"
        assert rows[0]["banks"] == ["m"]


class TestChiselSimulator:
    @pytest.fixture(scope="class")
    def simulated(self, request):
        from repro.workloads import synthetic_table

        table = synthetic_table(3000, seed=50)
        engine = ChiselLPM.build(table, ChiselConfig(seed=51))
        return table, ChiselSimulator(engine)

    def test_functional_equivalence(self, simulated, rng):
        table, simulator = simulated
        for key in sample_keys(table, rng, 300):
            assert simulator.lookup(key) == simulator.engine.lookup(key)
        simulator.reset()

    def test_access_accounting(self, simulated, rng):
        table, simulator = simulated
        simulator.reset()
        keys = sample_keys(table, rng, 200)
        report = simulator.run(keys)
        assert report.lookups == 200
        # Every sub-cell's banks are read once per lookup: k index segment
        # reads per sub-cell, 1 filter, 1 bitvector.
        k = simulator.engine.config.num_hashes
        subcells = len(simulator.engine.subcells)
        total_index = sum(
            count for name, count in report.access_counts.items()
            if name.startswith("index/")
        )
        assert total_index == 200 * k * subcells
        assert report.access_counts["result"] == report.hits
        assert 0 < report.hits <= 200
        simulator.reset()

    def test_pipeline_metrics(self, simulated):
        _table, simulator = simulated
        report = simulator.report()
        assert report.cycle_time_ns > 0
        # The off-chip result stage dominates latency.
        assert report.latency_ns > 40.0
        assert report.msps > 0
        assert simulator.pipeline.memory_access_stages() == 3

    def test_power_tracks_analytic_model(self):
        """Simulator power at 200 Msps should land in the same band as the
        closed-form Fig. 13 model for the same (scaled) structure."""
        from repro.hardware import chisel_power
        from repro.workloads import synthetic_table

        table = synthetic_table(6000, seed=52)
        engine = ChiselLPM.build(table, ChiselConfig(seed=53))
        simulator = ChiselSimulator(engine)
        rng = random.Random(54)
        report = simulator.run(rng.getrandbits(32) for _ in range(500))
        simulated = report.power_watts(200e6)
        analytic = chisel_power(len(table)).total_watts
        # Same order, within 3x: the simulator charges per-bank array
        # energy for the parallel sub-cell reads, the analytic model one
        # merged macro, so the simulator reads higher.
        assert analytic / 3 < simulated < analytic * 3

    def test_storage_rollup_positive(self, simulated):
        _table, simulator = simulated
        report = simulator.report()
        assert report.on_chip_mbits > 0
        assert report.off_chip_mbits > 0
