"""Tests for the analytic storage models and the paper's §4.2/§6 claims."""

import pytest

from repro.core.sizing import (
    StorageBreakdown,
    chisel_cpe_storage,
    chisel_storage,
    ebf_storage,
    indirection_saving,
    naive_bloomier_storage,
    pointer_bits,
    poor_ebf_storage,
    tcam_storage,
)


class TestPointerBits:
    def test_values(self):
        assert pointer_bits(1) == 1
        assert pointer_bits(2) == 1
        assert pointer_bits(3) == 2
        assert pointer_bits(4096) == 12
        assert pointer_bits(4097) == 13


class TestBreakdown:
    def test_totals(self):
        breakdown = StorageBreakdown("x", {"a": 100, "b": 50}, {"c": 25})
        assert breakdown.on_chip_bits == 150
        assert breakdown.off_chip_bits == 25
        assert breakdown.total_bits == 175
        assert breakdown.total_mbits == pytest.approx(175e-6)
        assert breakdown.bytes_per_prefix(5) == pytest.approx(175 / 8 / 5)


class TestChiselModel:
    def test_components(self):
        breakdown = chisel_storage(256_000, 32, stride=4)
        assert set(breakdown.on_chip) == {"index", "filter", "bitvector"}
        assert breakdown.off_chip == {}

    def test_worst_case_depth_is_n(self):
        b = chisel_storage(1000, 32, stride=4, partition_capacity=None)
        ptr = pointer_bits(1000)
        assert b.on_chip["index"] == 3 * 1000 * ptr
        assert b.on_chip["filter"] == 1000 * 33
        assert b.on_chip["bitvector"] == 1000 * (16 + ptr)

    def test_average_case_uses_collapsed(self):
        worst = chisel_storage(1000, 32, stride=4)
        average = chisel_storage(1000, 32, stride=4, num_collapsed=500)
        assert average.total_bits < worst.total_bits

    def test_no_wildcards_drops_bitvector(self):
        b = chisel_storage(1000, 32, wildcards=False)
        assert "bitvector" not in b.on_chip

    def test_paper_8_bytes_per_prefix_band(self):
        """§4.1 quotes ~8 B/prefix for IPv4; our model (with the dirty bit
        and explicit region pointers) lands within 1.6x of that."""
        bpp = chisel_storage(256_000, 32, stride=4).bytes_per_prefix(256_000)
        assert 6.0 < bpp < 13.0

    def test_stride_grows_bitvector_only(self):
        s4 = chisel_storage(1000, 32, stride=4)
        s6 = chisel_storage(1000, 32, stride=6)
        assert s6.on_chip["bitvector"] > s4.on_chip["bitvector"]
        assert s6.on_chip["index"] == s4.on_chip["index"]


class TestPaperClaims:
    def test_indirection_saving_ipv4(self):
        """§4.2: 'up to 20%' less than the naïve layout for IPv4."""
        saving = indirection_saving(256_000, 32)
        assert 0.10 < saving <= 0.25

    def test_indirection_saving_ipv6(self):
        """§4.2: ~49% for IPv6."""
        saving = indirection_saving(256_000, 128)
        assert 0.40 < saving <= 0.60

    def test_indirection_saving_grows_with_width(self):
        assert indirection_saving(256_000, 128) > indirection_saving(256_000, 32)

    def test_fig8_ratios(self):
        """§6.1: Chisel ~8x smaller than EBF, ~4x than poor-EBF; total at
        most ~2x EBF's on-chip part."""
        for n in (256_000, 512_000, 1_000_000):
            chisel = chisel_storage(n, 32, wildcards=False).total_bits
            ebf = ebf_storage(n, 32)
            poor = poor_ebf_storage(n, 32)
            assert 6.0 < ebf.total_bits / chisel < 11.0
            assert 3.0 < poor.total_bits / chisel < 6.0
            assert chisel / ebf.on_chip_bits < 2.1

    def test_fig12_ipv6_at_most_doubles(self):
        """§6.4.2: quadrupling the key width only ~doubles storage."""
        for n in (256_000, 1_000_000):
            v4 = chisel_storage(n, 32, stride=4).total_bits
            v6 = chisel_storage(n, 128, stride=4).total_bits
            assert 1.6 < v6 / v4 < 2.2

    def test_cpe_variant_tracks_expansion(self):
        # Above the partition capacity the pointer width is constant, so
        # CPE-variant storage is proportional to the expanded count.
        base = chisel_cpe_storage(100_000, 32).total_bits
        expanded = chisel_cpe_storage(250_000, 32).total_bits
        assert expanded == pytest.approx(2.5 * base, rel=0.01)


class TestOtherModels:
    def test_naive_bloomier_scales_with_slots(self):
        b = naive_bloomier_storage(1000, 32)
        assert b.on_chip["filter"] == 3 * 1000 * 32
        assert b.on_chip["index"] == 3 * 1000 * 2  # log2(3) -> 2 bits

    def test_ebf_factors(self):
        ebf = ebf_storage(1000, 32, table_factor=12.0)
        poor = poor_ebf_storage(1000, 32)
        assert ebf.on_chip["counting_bloom"] == 12_000 * 4
        assert poor.on_chip["counting_bloom"] == 6_000 * 4

    def test_tcam_storage(self):
        assert tcam_storage(1000).total_bits == 36_000
