"""Stateful property testing: hypothesis drives the live engines through
arbitrary interleavings of announce / withdraw / purge / lookup and checks
them against a plain-dict reference after every step.

This is the strongest correctness statement in the suite: no sequence of
control-plane operations may ever make the data plane answer wrongly.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import ChiselConfig, ChiselLPM
from repro.prefix import Prefix, RoutingTable
from repro.router import ForwardingEngine, NextHopInfo

LENGTHS = (0, 4, 8, 12, 15, 16, 17, 20, 24, 26, 32)


def lpm_reference(routes, key):
    best_length = -1
    best = None
    for prefix, value in routes.items():
        if prefix.covers(key) and prefix.length > best_length:
            best_length = prefix.length
            best = value
    return best


class ChiselStateMachine(RuleBasedStateMachine):
    """Random announce/withdraw/purge vs a dict reference."""

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        self.rng = random.Random(seed)
        table = RoutingTable(width=32)
        for _ in range(30):
            length = self.rng.choice(LENGTHS)
            prefix = Prefix(
                self.rng.getrandbits(length) if length else 0, length, 32
            )
            table.add(prefix, self.rng.randrange(1, 100))
        self.engine = ChiselLPM.build(
            table, ChiselConfig(seed=seed, partitions=2)
        )
        self.reference = dict(iter(table))

    def random_prefix(self, draw_length):
        length = draw_length
        value = self.rng.getrandbits(length) if length else 0
        return Prefix(value, length, 32)

    @rule(length=st.sampled_from(LENGTHS), next_hop=st.integers(1, 99))
    def announce_new(self, length, next_hop):
        prefix = self.random_prefix(length)
        self.engine.announce(prefix, next_hop)
        self.reference[prefix] = next_hop

    @rule(next_hop=st.integers(1, 99))
    @precondition(lambda self: self.reference)
    def reannounce_existing(self, next_hop):
        prefix = self.rng.choice(list(self.reference))
        self.engine.announce(prefix, next_hop)
        self.reference[prefix] = next_hop

    @rule()
    @precondition(lambda self: self.reference)
    def withdraw_existing(self):
        prefix = self.rng.choice(list(self.reference))
        self.engine.withdraw(prefix)
        del self.reference[prefix]

    @rule(length=st.sampled_from(LENGTHS))
    def withdraw_absent(self, length):
        prefix = self.random_prefix(length)
        if prefix not in self.reference:
            assert self.engine.withdraw(prefix) is None

    @rule()
    def purge(self):
        self.engine.purge_dirty()

    @rule()
    def flap_existing(self):
        if not self.reference:
            return
        prefix = self.rng.choice(list(self.reference))
        next_hop = self.reference[prefix]
        self.engine.withdraw(prefix)
        self.engine.announce(prefix, next_hop)

    @invariant()
    def lookups_match_reference(self):
        probes = [self.rng.getrandbits(32) for _ in range(5)]
        for prefix in list(self.reference)[:5]:
            free = 32 - prefix.length
            probes.append(
                prefix.network_int()
                | (self.rng.getrandbits(free) if free else 0)
            )
        for key in probes:
            assert self.engine.lookup(key) == lpm_reference(self.reference, key)

    @invariant()
    def size_matches(self):
        assert len(self.engine) == len(self.reference)


ChiselStateMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestChiselStateMachine = ChiselStateMachine.TestCase


class FibStateMachine(RuleBasedStateMachine):
    """The router-layer FIB: next-hop interning must never leak or dangle."""

    @initialize()
    def setup(self):
        self.rng = random.Random(99)
        self.fib = ForwardingEngine(dirty_purge_threshold=8)
        self.reference = {}

    def random_prefix(self):
        length = self.rng.choice((8, 16, 24))
        return Prefix(self.rng.getrandbits(length), length, 32)

    @rule(gw=st.integers(1, 6), iface=st.integers(0, 2))
    def announce(self, gw, iface):
        prefix = self.random_prefix()
        info = NextHopInfo(f"192.0.2.{gw}", f"eth{iface}")
        self.fib.announce(prefix, info.gateway, info.interface)
        self.reference[prefix] = info

    @rule()
    @precondition(lambda self: self.reference)
    def withdraw(self):
        prefix = self.rng.choice(list(self.reference))
        self.fib.withdraw(prefix)
        del self.reference[prefix]

    @invariant()
    def next_hop_table_exactly_live_set(self):
        live = set(self.reference.values())
        assert len(self.fib.next_hops) == len(live)
        for info in live:
            assert info in self.fib.next_hops

    @invariant()
    def forwarding_matches(self):
        for prefix in list(self.reference)[:4]:
            free = 32 - prefix.length
            key = prefix.network_int() | (
                self.rng.getrandbits(free) if free else 0
            )
            decision = self.fib.forward(key)
            best_length = -1
            expected = None
            for candidate, info in self.reference.items():
                if candidate.covers(key) and candidate.length > best_length:
                    best_length = candidate.length
                    expected = info
            assert decision == expected


FibStateMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
TestFibStateMachine = FibStateMachine.TestCase
