"""Tests for the persistent snapshot store (``repro.store``).

Layered like the module: record codec units, delta-log framing and
damage classification, checkpoint write/verify, then the store+boot
integration — a cold start from disk must serve exactly what a golden
single-process router serves, or refuse visibly.

The hypothesis property (``TestDeltaFraming``) is the log-format
contract: *any* sequence of image deltas — appends, overwrites,
truncations, -1 sentinels, beyond-64-bit spillover keys — survives
encode → append → replay → apply byte-for-byte.
"""

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.image import HardwareImage, ImageDelta
from repro.faults.fileinject import (
    duplicate_final_record,
    flip_file_bit,
    torn_final_record,
    truncate_file,
)
from repro.router import ForwardingEngine
from repro.serve import SnapshotRouter
from repro.store import (
    ANNOUNCE,
    PUBLISH,
    WITHDRAW,
    CheckpointCorruptError,
    CheckpointPolicy,
    DeltaLog,
    LogRecord,
    RecordDecodeError,
    RecoveryError,
    SnapshotStore,
    StoreError,
    apply_delta,
    cold_start,
    decode_delta,
    decode_record,
    encode_delta,
    encode_record,
    replay_log,
)
from repro.store.checkpoint import load_checkpoint, write_checkpoint
from repro.store.deltalog import scan_frames
from repro.store.store import checkpoint_path, list_generations, log_path
from repro.workloads import synthetic_table
from repro.workloads.traces import synthesize_trace


@pytest.fixture(autouse=True, scope="module")
def _isolated_registry():
    """Fresh metrics registry per module: store counters/histograms are
    registered once per process, and crash/recovery runs inflate values
    other modules' global-registry assertions depend on."""
    from repro.obs import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture()
def store_dir():
    directory = tempfile.mkdtemp(prefix="chz-test-store-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def build_router(size=300, seed=21):
    table = synthetic_table(size, seed=seed)
    fib = ForwardingEngine.from_table(table)
    return table, SnapshotRouter(fib)


def churn(router, table, updates, seed=22, store=None):
    """Apply a deterministic trace; returns the ops for golden replay."""
    from repro.core.updates import ANNOUNCE as OP_ANNOUNCE

    trace = synthesize_trace(table, updates, seed=seed)
    ops = []
    for op in trace:
        if op.op == OP_ANNOUNCE:
            gateway = f"10.9.{op.next_hop % 256}.1"
            interface = f"eth{op.next_hop % 8}"
            router.announce(op.prefix, gateway, interface)
            ops.append(("announce", op.prefix, gateway, interface))
        else:
            router.withdraw(op.prefix)
            ops.append(("withdraw", op.prefix, None, None))
        if store is not None:
            store.maybe_checkpoint()
    return ops


def golden_replay(table, ops):
    fib = ForwardingEngine.from_table(table)
    router = SnapshotRouter(fib)
    for kind, prefix, gateway, interface in ops:
        if kind == "announce":
            router.announce(prefix, gateway, interface)
        else:
            router.withdraw(prefix)
    return router


def assert_identical(router_a, router_b, keys):
    """Same served answers and byte-identical hardware images."""
    assert router_a.lookup_many(keys) == router_b.lookup_many(keys)
    image_a = HardwareImage.snapshot(router_a.fib.engine)
    image_b = HardwareImage.snapshot(router_b.fib.engine)
    forward, backward = image_a.diff(image_b), image_b.diff(image_a)
    assert not forward.writes and not forward.deletions
    assert not backward.writes and not backward.deletions


class TestRecordCodec:
    def test_announce_round_trip(self):
        record = LogRecord(op=ANNOUNCE, seq=17, prefix_value=0x0A000000,
                           prefix_length=8, gateway="10.0.0.1",
                           interface="eth3")
        assert decode_record(encode_record(record)) == record

    def test_withdraw_round_trip(self):
        record = LogRecord(op=WITHDRAW, seq=2**40,
                           prefix_value=2**127 - 1, prefix_length=128)
        assert decode_record(encode_record(record)) == record

    def test_publish_marker_round_trip(self):
        record = LogRecord(op=PUBLISH, seq=5, generation=12)
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert not decoded.is_update

    def test_record_with_delta(self):
        delta = ImageDelta(
            writes={("subcell3", 0): 7, ("/filter", 4): -1,
                    ("/spillover_key", 1): 2**70 + 3},
            deletions=[("/result", 9)],
        )
        record = LogRecord(op=ANNOUNCE, seq=1, prefix_value=1,
                           prefix_length=32, gateway="g", interface="i",
                           delta=delta)
        decoded = decode_record(encode_record(record))
        assert decoded.delta.writes == delta.writes
        assert sorted(decoded.delta.deletions) == sorted(delta.deletions)

    def test_trailing_garbage_rejected(self):
        payload = encode_record(LogRecord(op=PUBLISH, seq=1, generation=2))
        with pytest.raises(RecordDecodeError):
            decode_record(payload + b"\x00")

    def test_truncated_payload_rejected(self):
        payload = encode_record(LogRecord(
            op=ANNOUNCE, seq=3, prefix_value=10, prefix_length=8,
            gateway="gw", interface="if"))
        with pytest.raises(RecordDecodeError):
            decode_record(payload[:-2])

    def test_unknown_op_rejected(self):
        with pytest.raises(RecordDecodeError):
            decode_record(b"\x09\x01")

    def test_apply_delta_gap_rejected(self):
        tables = {"t": [1, 2]}
        with pytest.raises(RecordDecodeError):
            apply_delta(tables, ImageDelta(writes={("t", 5): 9},
                                           deletions=[]))

    def test_apply_delta_truncates_then_writes(self):
        tables = {"t": [1, 2, 3, 4]}
        apply_delta(tables, ImageDelta(
            writes={("t", 1): 20, ("t", 2): 30},
            deletions=[("t", 2), ("t", 3)],
        ))
        assert tables["t"] == [1, 20, 30]


_TABLE_NAMES = ("subcell3", "/filter", "/spillover_key", "/dirty")
_WORDS = st.one_of(
    st.integers(min_value=-1, max_value=2**20),
    st.just(-1),
    # IPv6 spillover keys overflow 64 bits by design; the signed varint
    # must carry them losslessly.
    st.integers(min_value=2**64, max_value=2**80),
)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(_TABLE_NAMES),
        st.sampled_from(("append", "write", "truncate")),
        _WORDS,
        st.floats(min_value=0.0, max_value=0.999),
    ),
    min_size=1, max_size=40,
)


class TestDeltaFraming:
    """Satellite: the hypothesis round-trip property for the delta log."""

    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_delta_sequences_replay_to_equal_state(self, ops):
        tables = {}
        deltas = []
        for name, kind, value, fraction in ops:
            column = tables.get(name, [])
            if kind == "append":
                delta = ImageDelta(writes={(name, len(column)): value},
                                   deletions=[])
            elif kind == "write" and column:
                index = int(fraction * len(column))
                delta = ImageDelta(writes={(name, index): value},
                                   deletions=[])
            elif kind == "truncate" and column:
                keep = int(fraction * len(column))
                delta = ImageDelta(
                    writes={},
                    deletions=[(name, addr)
                               for addr in range(keep, len(column))],
                )
            else:
                continue
            apply_delta(tables, delta)
            deltas.append(delta)

        directory = tempfile.mkdtemp(prefix="chz-prop-")
        try:
            path = os.path.join(directory, "delta-00000001.log")
            log = DeltaLog.create(path, generation=1, sync=False)
            for seq, delta in enumerate(deltas, start=1):
                # Codec-level round trip, independent of the log.
                decoded, _end = decode_delta(encode_delta(delta))
                assert decoded.writes == delta.writes
                assert sorted(decoded.deletions) == sorted(delta.deletions)
                log.append(encode_record(LogRecord(
                    op=ANNOUNCE, seq=seq, prefix_value=seq,
                    prefix_length=32, gateway="g", interface="i",
                    delta=delta,
                )))
            log.close()
            replay = replay_log(path, expected_generation=1)
            assert replay.clean
            assert len(replay.records) == len(deltas)
            replayed = {}
            for record in replay.records:
                apply_delta(replayed, record.delta)
            assert replayed == tables
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestDeltaLog:
    def _filled_log(self, directory, records=5):
        path = os.path.join(directory, "delta-00000001.log")
        log = DeltaLog.create(path, generation=1)
        for seq in range(1, records + 1):
            log.append(encode_record(LogRecord(
                op=ANNOUNCE, seq=seq, prefix_value=seq, prefix_length=24,
                gateway=f"10.0.0.{seq}", interface="eth0",
            )))
        log.close()
        return path

    def test_clean_replay(self, store_dir):
        path = self._filled_log(store_dir)
        replay = replay_log(path, expected_generation=1)
        assert replay.clean
        assert [record.seq for record in replay.records] == [1, 2, 3, 4, 5]
        assert replay.valid_length == os.path.getsize(path)

    def test_torn_tail_is_torn_not_corrupt(self, store_dir):
        path = self._filled_log(store_dir)
        torn_final_record(path)
        replay = replay_log(path, expected_generation=1)
        assert replay.status == "torn"
        assert [record.seq for record in replay.records] == [1, 2, 3, 4]
        # The valid prefix is exactly the first four frames.
        assert replay.valid_length == scan_frames(path)[-1][0] + \
            scan_frames(path)[-1][1]

    def test_mid_log_damage_is_corrupt_and_stops_replay(self, store_dir):
        path = self._filled_log(store_dir)
        offset, total = scan_frames(path)[2]
        flip_file_bit(path, offset + total // 2)
        replay = replay_log(path, expected_generation=1)
        assert replay.damaged
        assert [record.seq for record in replay.records] == [1, 2]

    def test_duplicate_final_record_skipped(self, store_dir):
        path = self._filled_log(store_dir)
        duplicate_final_record(path)
        replay = replay_log(path, expected_generation=1)
        assert replay.clean
        assert replay.duplicates_skipped == 1
        assert [record.seq for record in replay.records] == [1, 2, 3, 4, 5]

    def test_sequence_gap_is_corrupt(self, store_dir):
        path = os.path.join(store_dir, "delta-00000001.log")
        log = DeltaLog.create(path, generation=1)
        log.append(encode_record(LogRecord(
            op=ANNOUNCE, seq=1, prefix_value=1, prefix_length=8,
            gateway="g", interface="i")))
        log.append(encode_record(LogRecord(
            op=ANNOUNCE, seq=3, prefix_value=3, prefix_length=8,
            gateway="g", interface="i")))
        log.close()
        replay = replay_log(path, expected_generation=1)
        assert replay.status == "corrupt"
        assert "gap" in replay.detail

    def test_generation_mismatch_rejected(self, store_dir):
        path = self._filled_log(store_dir)
        replay = replay_log(path, expected_generation=9)
        assert replay.status == "bad-header"

    def test_open_append_truncates_torn_tail(self, store_dir):
        path = self._filled_log(store_dir)
        valid = replay_log(path).valid_length
        torn_final_record(path)
        torn_valid = replay_log(path).valid_length
        assert torn_valid < valid
        log = DeltaLog.open_append(path, 1, torn_valid)
        log.append(encode_record(LogRecord(
            op=ANNOUNCE, seq=5, prefix_value=50, prefix_length=16,
            gateway="g", interface="i")))
        log.close()
        replay = replay_log(path, expected_generation=1)
        assert replay.clean
        assert [record.seq for record in replay.records] == [1, 2, 3, 4, 5]


class TestCheckpoint:
    def _checkpointed(self, directory):
        _table, router = build_router()
        path = os.path.join(directory, "checkpoint-00000001.chz")
        snapshot, overlay, fib_blob, healthy = router.persistence_cut()
        assert healthy
        write_checkpoint(path, snapshot, overlay, generation=1, seq=0,
                         blobs={"fib": fib_blob})
        return path, router

    def test_write_load_verify(self, store_dir):
        path, router = self._checkpointed(store_dir)
        assert not [name for name in os.listdir(store_dir)
                    if name.endswith(".tmp")]
        checkpoint = load_checkpoint(path)
        assert checkpoint.generation == 1
        assert checkpoint.seq == 0
        lookup = checkpoint.to_lookup()
        keys = np.arange(0, 2**32, 2**24, dtype=np.uint64)
        served = lookup.lookup_batch(keys)
        want = router.lookup_batch(keys)
        assert served.tolist() == want.tolist()
        checkpoint.close()

    def test_bit_flip_detected(self, store_dir):
        path, _router = self._checkpointed(store_dir)
        flip_file_bit(path, os.path.getsize(path) - 9, 4)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_header_flip_detected_not_typeerror(self, store_dir):
        # A flip inside the JSON header (e.g. a dtype string) must be
        # classified as corruption, never escape as TypeError/ValueError.
        path, _router = self._checkpointed(store_dir)
        with open(path, "rb") as handle:
            blob = handle.read(4096)
        offset = blob.find(b"uint64")
        assert offset > 0
        flip_file_bit(path, offset + 1, 2)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncation_detected(self, store_dir):
        path, _router = self._checkpointed(store_dir)
        truncate_file(path, os.path.getsize(path) // 2)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_pickled_fib_blob_round_trips(self, store_dir):
        import pickle

        path, router = self._checkpointed(store_dir)
        checkpoint = load_checkpoint(path)
        fib = pickle.loads(checkpoint.blob("fib"))
        image_a = HardwareImage.snapshot(fib.engine)
        image_b = HardwareImage.snapshot(router.fib.engine)
        delta = image_a.diff(image_b)
        assert not delta.writes and not delta.deletions
        checkpoint.close()


class TestStoreIntegration:
    def test_cold_start_replays_to_golden(self, store_dir):
        table, router = build_router()
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=10, retain=2))
        ops = churn(router, table, 33, store=store)
        assert store.seq == len([op for op in ops])
        store.close()

        result = cold_start(store_dir)
        assert result.report.boot == "replay"
        assert result.report.seq == store.seq
        golden = golden_replay(table, ops)
        keys = [int(key) for key in
                np.random.default_rng(3).integers(0, 2**32, size=500)]
        assert_identical(result.router, golden, keys)
        result.store.close()

    def test_recovery_survives_torn_tail(self, store_dir):
        table, router = build_router()
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=50, retain=2))
        ops = churn(router, table, 12, store=store)
        total = store.seq
        store.close()
        torn_final_record(log_path(store_dir, store.generation))

        result = cold_start(store_dir)
        assert result.report.torn_tail
        assert result.report.seq == total - 1
        golden = golden_replay(table, ops[:-1])
        keys = [int(key) for key in
                np.random.default_rng(4).integers(0, 2**32, size=300)]
        assert_identical(result.router, golden, keys)
        result.store.close()

    def test_corrupt_newest_checkpoint_falls_back(self, store_dir):
        table, router = build_router()
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=8, retain=3))
        ops = churn(router, table, 20, store=store)
        total = store.seq
        store.close()
        generations = list_generations(store_dir)
        assert len(generations) >= 2
        truncate_file(checkpoint_path(store_dir, generations[-1]), 64)

        result = cold_start(store_dir)
        assert result.report.fallbacks >= 1
        # Log chaining across generations still reaches the full tail.
        assert result.report.seq == total
        golden = golden_replay(table, ops)
        keys = [int(key) for key in
                np.random.default_rng(5).integers(0, 2**32, size=300)]
        assert_identical(result.router, golden, keys)
        result.store.close()

    def test_boot_checkpoint_preserves_seq_lineage(self, store_dir):
        """Regression: the checkpoint-on-boot cut must carry the
        recovered seq forward.  A reset-to-zero lineage made every
        post-boot record look like a stale duplicate when a later
        recovery fell back past the boot checkpoint — silent loss of
        acknowledged updates."""
        table, router = build_router()
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=100, retain=3))
        ops = churn(router, table, 9, store=store)
        total = store.seq
        store.close()

        booted = cold_start(store_dir)
        assert booted.report.seq == total
        # The boot cut a fresh generation; its checkpoint must claim
        # the recovered seq, and post-boot records must chain onto it.
        assert booted.store.seq == total
        more = churn(booted.router, table, 7, seed=31, store=booted.store)
        grand_total = booted.store.seq
        # Not necessarily total + len(more): a withdraw of an absent
        # prefix is a no-op and correctly journals nothing.
        assert grand_total > total
        boot_generation = booted.store.generation
        booted.store.close()
        if booted.checkpoint is not None:
            booted.checkpoint.close()

        # Corrupt the boot checkpoint: recovery falls back to the
        # pre-boot generation and must chain the post-boot log records
        # as successors, not skip them as duplicates.
        truncate_file(checkpoint_path(store_dir, boot_generation), 64)
        result = cold_start(store_dir)
        assert result.report.fallbacks >= 1
        assert result.report.seq == grand_total
        golden = golden_replay(table, ops + more)
        keys = [int(key) for key in
                np.random.default_rng(6).integers(0, 2**32, size=300)]
        assert_identical(result.router, golden, keys)
        result.store.close()

    def test_all_checkpoints_corrupt_refuses(self, store_dir):
        table, router = build_router()
        store = SnapshotStore.create(store_dir, router)
        churn(router, table, 6, store=store)
        store.close()
        for generation in list_generations(store_dir):
            truncate_file(checkpoint_path(store_dir, generation), 16)
        with pytest.raises(RecoveryError):
            cold_start(store_dir, retries=1, backoff=0.0)

    def test_bootstrap_rebuild_when_store_unrecoverable(self, store_dir):
        table, router = build_router()
        store = SnapshotStore.create(store_dir, router)
        churn(router, table, 6, store=store)
        store.close()
        for generation in list_generations(store_dir):
            truncate_file(checkpoint_path(store_dir, generation), 16)
        result = cold_start(store_dir, retries=1, backoff=0.0,
                            bootstrap=table)
        assert result.report.boot == "recompile"
        # The bootstrap table is served correctly (golden = fresh build).
        fresh = SnapshotRouter(ForwardingEngine.from_table(table))
        keys = [int(key) for key in
                np.random.default_rng(6).integers(0, 2**32, size=300)]
        assert result.router.lookup_many(keys) == fresh.lookup_many(keys)
        result.store.close()

    def test_checkpoint_refused_while_degraded(self, store_dir):
        _table, router = build_router(size=80)
        store = SnapshotStore.create(store_dir, router)
        router._degrade("test-forced degrade")
        with pytest.raises(StoreError):
            store.checkpoint()
        store.close()

    def test_delta_capture_cross_check(self, store_dir):
        table, router = build_router(size=150)
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=6, retain=2),
            capture_deltas=True)
        churn(router, table, 15, store=store)
        store.close()
        result = cold_start(store_dir, capture_deltas=True)
        assert result.report.deep_verified
        result.store.close()

    def test_recovered_store_keeps_accepting_updates(self, store_dir):
        table, router = build_router(size=150)
        store = SnapshotStore.create(
            store_dir, router,
            policy=CheckpointPolicy(every_records=6, retain=2))
        ops = churn(router, table, 9, store=store)
        store.close()

        result = cold_start(store_dir)
        more = churn(result.router, table, 7, seed=31, store=result.store)
        result.store.close()

        second = cold_start(store_dir)
        golden = golden_replay(table, ops + more)
        keys = [int(key) for key in
                np.random.default_rng(7).integers(0, 2**32, size=300)]
        assert_identical(second.router, golden, keys)
        second.store.close()
