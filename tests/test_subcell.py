"""Unit tests for a single Chisel sub-cell (Index+Filter+BV+Result path)."""

import random

import pytest

from repro.core.collapse import SubCellPlan
from repro.core.config import ChiselConfig
from repro.core.events import CapacityError, UpdateKind
from repro.core.subcell import ChiselSubCell
from repro.prefix import Prefix


@pytest.fixture
def config():
    return ChiselConfig(width=32, stride=3, partitions=1, seed=1)


@pytest.fixture
def fig5_subcell(config):
    """Sub-cell at base 4, span 3, loaded with the paper's Fig. 5 prefixes."""
    cell = ChiselSubCell(SubCellPlan(4, 3), capacity=16, config=config,
                         rng=random.Random(2))
    cell.build({
        0b1001: {(5, 0b1): 1, (7, 0b101): 3},   # P1, P3
        0b1010: {(6, 0b11): 2},                 # P2
    })
    return cell


def key_of(bits: str) -> int:
    """A 32-bit key starting with the given bits (rest zero)."""
    return int(bits, 2) << (32 - len(bits))


class TestFig5Lookup:
    def test_lookup_p1(self, fig5_subcell):
        """Key 1001100...: the paper's walkthrough resolves to P1."""
        assert fig5_subcell.lookup(key_of("1001100")) == 1

    def test_lookup_p3_overrides_p1(self, fig5_subcell):
        assert fig5_subcell.lookup(key_of("1001101")) == 3

    def test_lookup_p2(self, fig5_subcell):
        assert fig5_subcell.lookup(key_of("1010110")) == 2
        assert fig5_subcell.lookup(key_of("1010111")) == 2

    def test_lookup_miss_within_bucket(self, fig5_subcell):
        """Collapsed prefix matches but the expansion bit is 0."""
        assert fig5_subcell.lookup(key_of("1001000")) is None

    def test_lookup_miss_unknown_collapsed(self, fig5_subcell):
        assert fig5_subcell.lookup(key_of("1111111")) is None

    def test_false_positive_filtering(self, fig5_subcell):
        """No random key outside the buckets may ever return a next hop
        whose collapsed prefix isn't stored (zero false positives)."""
        rng = random.Random(3)
        for _ in range(2000):
            key = rng.getrandbits(32)
            collapsed = key >> 28
            result = fig5_subcell.lookup(key)
            if collapsed not in (0b1001, 0b1010):
                assert result is None


class TestAnnounce:
    def test_add_pc_into_existing_bucket(self, fig5_subcell):
        new = Prefix.from_bits("100100")  # collapses to 1001
        kind = fig5_subcell.announce(new, 9)
        assert kind is UpdateKind.ADD_PC
        assert fig5_subcell.lookup(key_of("1001000")) == 9
        # P3 still wins its expansion.
        assert fig5_subcell.lookup(key_of("1001101")) == 3

    def test_next_hop_change(self, fig5_subcell):
        kind = fig5_subcell.announce(Prefix.from_bits("10011"), 42)
        assert kind is UpdateKind.NEXT_HOP
        assert fig5_subcell.lookup(key_of("1001100")) == 42

    def test_new_collapsed_prefix(self, fig5_subcell):
        kind = fig5_subcell.announce(Prefix.from_bits("11111"), 5)
        assert kind in (UpdateKind.SINGLETON, UpdateKind.RESETUP)
        assert fig5_subcell.lookup(key_of("1111100")) == 5

    def test_capacity_error(self, config):
        cell = ChiselSubCell(SubCellPlan(4, 3), capacity=1, config=config,
                             rng=random.Random(4))
        cell.build({0b1001: {(4, 0): 1}})
        with pytest.raises(CapacityError):
            cell.announce(Prefix.from_bits("1111"), 2)


class TestWithdraw:
    def test_withdraw_partial_bucket(self, fig5_subcell):
        kind = fig5_subcell.withdraw(Prefix.from_bits("1001101"))  # P3
        assert kind is UpdateKind.WITHDRAW
        # Expansion 101 falls back to P1.
        assert fig5_subcell.lookup(key_of("1001101")) == 1

    def test_withdraw_empties_bucket_marks_dirty(self, fig5_subcell):
        assert fig5_subcell.withdraw(Prefix.from_bits("101011")) is UpdateKind.WITHDRAW
        assert fig5_subcell.lookup(key_of("1010110")) is None
        bucket = fig5_subcell.buckets[0b1010]
        assert bucket.dirty
        # Still encoded in the Index Table (shadow), just dirty.
        assert 0b1010 in fig5_subcell.index

    def test_withdraw_absent_is_noop(self, fig5_subcell):
        assert fig5_subcell.withdraw(Prefix.from_bits("110011")) is None

    def test_withdraw_from_dirty_bucket_is_noop(self, fig5_subcell):
        fig5_subcell.withdraw(Prefix.from_bits("101011"))
        assert fig5_subcell.withdraw(Prefix.from_bits("101011")) is None

    def test_route_flap_restores(self, fig5_subcell):
        """Withdraw-then-announce is the §4.4.1 dirty-bit fast path."""
        fig5_subcell.withdraw(Prefix.from_bits("101011"))
        kind = fig5_subcell.announce(Prefix.from_bits("101011"), 8)
        assert kind is UpdateKind.ROUTE_FLAP
        assert fig5_subcell.lookup(key_of("1010110")) == 8

    def test_purge_dirty_reclaims(self, fig5_subcell):
        fig5_subcell.withdraw(Prefix.from_bits("101011"))
        purged = fig5_subcell.purge_dirty()
        assert purged == 1
        assert 0b1010 not in fig5_subcell.buckets
        assert 0b1010 not in fig5_subcell.index
        # The pointer is reusable.
        kind = fig5_subcell.announce(Prefix.from_bits("1010"), 4)
        assert kind in (UpdateKind.SINGLETON, UpdateKind.RESETUP)
        assert fig5_subcell.lookup(key_of("1010000")) == 4

    def test_purge_nothing(self, fig5_subcell):
        assert fig5_subcell.purge_dirty() == 0


class TestAccounting:
    def test_counts(self, fig5_subcell):
        assert len(fig5_subcell) == 2
        assert fig5_subcell.original_route_count() == 3

    def test_dirty_excluded_from_len(self, fig5_subcell):
        fig5_subcell.withdraw(Prefix.from_bits("101011"))
        assert len(fig5_subcell) == 1
        assert fig5_subcell.original_route_count() == 2

    def test_storage_components(self, fig5_subcell):
        bits = fig5_subcell.storage_bits()
        assert set(bits) == {"index", "filter", "bitvector"}
        assert all(value > 0 for value in bits.values())

    def test_words_written_increases(self, fig5_subcell):
        before = fig5_subcell.words_written
        fig5_subcell.announce(Prefix.from_bits("100101"), 6)
        assert fig5_subcell.words_written > before

    def test_table_depths(self, fig5_subcell):
        depths = fig5_subcell.table_depths()
        assert depths["filter_entries"] == 16
        assert depths["index_slots"] >= 3 * 2
