"""Unit tests for the RoutingTable container."""

import pytest

from repro.prefix import Prefix, PrefixError, RoutingTable, key_from_string


@pytest.fixture
def routes():
    return RoutingTable.from_strings([
        ("0.0.0.0/0", 1),
        ("10.0.0.0/8", 2),
        ("10.1.0.0/16", 3),
        ("10.1.2.0/24", 4),
        ("192.168.0.0/16", 5),
    ])


class TestMutation:
    def test_add_and_len(self, routes):
        assert len(routes) == 5

    def test_add_overwrites(self, routes):
        routes.add(Prefix.from_string("10.0.0.0/8"), 99)
        assert len(routes) == 5
        assert routes.next_hop(Prefix.from_string("10.0.0.0/8")) == 99

    def test_remove_returns_next_hop(self, routes):
        assert routes.remove(Prefix.from_string("10.1.0.0/16")) == 3
        assert len(routes) == 4

    def test_remove_absent_returns_none(self, routes):
        assert routes.remove(Prefix.from_string("172.16.0.0/12")) is None

    def test_width_mismatch_rejected(self, routes):
        with pytest.raises(PrefixError):
            routes.add(Prefix.from_string("2001:db8::/32"), 1)


class TestQueries:
    def test_contains(self, routes):
        assert Prefix.from_string("10.0.0.0/8") in routes
        assert Prefix.from_string("10.0.0.0/9") not in routes

    def test_lookup_longest_match(self, routes):
        assert routes.lookup(key_from_string("10.1.2.3")) == 4

    def test_lookup_intermediate_match(self, routes):
        assert routes.lookup(key_from_string("10.1.9.9")) == 3

    def test_lookup_falls_to_default(self, routes):
        assert routes.lookup(key_from_string("8.8.8.8")) == 1

    def test_lookup_no_default(self):
        table = RoutingTable.from_strings([("10.0.0.0/8", 1)])
        assert table.lookup(key_from_string("11.0.0.0")) is None

    def test_iteration_yields_pairs(self, routes):
        pairs = dict(routes)
        assert pairs[Prefix.from_string("192.168.0.0/16")] == 5


class TestStats:
    def test_histogram(self, routes):
        stats = routes.stats()
        assert stats.length_histogram == {0: 1, 8: 1, 16: 2, 24: 1}
        assert stats.populated_lengths == [0, 8, 16, 24]

    def test_mean_length(self, routes):
        assert routes.stats().mean_length == pytest.approx((0 + 8 + 16 + 16 + 24) / 5)

    def test_empty_table_stats(self):
        stats = RoutingTable().stats()
        assert stats.size == 0
        assert stats.mean_length == 0.0
        assert stats.populated_lengths == []

    def test_from_strings_infers_ipv6_width(self):
        table = RoutingTable.from_strings([("2001:db8::/32", 1)])
        assert table.width == 128
