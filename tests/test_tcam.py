"""Unit tests for the TCAM baseline and its cost models."""

import pytest

from repro.baselines import TCAM, BinaryTrie, tcam_power_watts, tcam_storage_bits
from repro.prefix import Prefix, RoutingTable, key_from_string

from .conftest import sample_keys


@pytest.fixture
def tcam(small_table):
    return TCAM.from_table(small_table)


class TestFunctional:
    def test_equivalence_with_oracle(self, small_table, tcam, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 200):
            assert tcam.lookup(key) == oracle.lookup(key)

    def test_priority_order_maintained_on_insert(self):
        tcam = TCAM(32)
        tcam.insert(Prefix.from_string("10.0.0.0/8"), 1)
        tcam.insert(Prefix.from_string("10.1.0.0/16"), 2)  # must sort above /8
        assert tcam.lookup(key_from_string("10.1.0.1")) == 2

    def test_insert_overwrites(self):
        tcam = TCAM(32)
        p = Prefix.from_string("10.0.0.0/8")
        tcam.insert(p, 1)
        tcam.insert(p, 2)
        assert len(tcam) == 1
        assert tcam.lookup(key_from_string("10.0.0.1")) == 2

    def test_remove(self, tcam, small_table):
        prefix, next_hop = next(iter(small_table))
        assert tcam.remove(prefix) == next_hop
        assert tcam.remove(prefix) is None
        assert len(tcam) == len(small_table) - 1


class TestCostModels:
    def test_datasheet_anchor(self):
        """18 Mb at 100 Msps must give exactly the datasheet's 15 W."""
        n = 18_000_000 // 36
        assert tcam_power_watts(n, 100e6) == pytest.approx(15.0)

    def test_power_linear_in_rate(self):
        assert tcam_power_watts(512_000, 200e6) == pytest.approx(
            2 * tcam_power_watts(512_000, 100e6)
        )

    def test_power_linear_in_size(self):
        assert tcam_power_watts(512_000, 100e6) == pytest.approx(
            4 * tcam_power_watts(128_000, 100e6)
        )

    def test_storage_bits(self):
        assert tcam_storage_bits(1000) == 36_000

    def test_instance_methods_agree(self, tcam, small_table):
        assert tcam.storage_bits() == tcam_storage_bits(len(small_table))
        assert tcam.power_watts(100e6) == pytest.approx(
            tcam_power_watts(len(small_table), 100e6)
        )
