"""Unit tests for the Tree Bitmap trie baseline."""

import pytest

from repro.baselines import BinaryTrie, TreeBitmap
from repro.prefix import Prefix, RoutingTable, key_from_string

from .conftest import sample_keys


@pytest.fixture
def tree():
    return TreeBitmap.from_table(RoutingTable.from_strings([
        ("0.0.0.0/0", 1),
        ("10.0.0.0/8", 2),
        ("10.1.0.0/16", 3),
        ("10.1.2.0/23", 4),
        ("10.1.2.0/24", 5),
    ]), stride=4)


class TestLookup:
    def test_longest_match(self, tree):
        assert tree.lookup(key_from_string("10.1.2.3")) == 5

    def test_internal_prefix_match(self, tree):
        """/23 ends mid-node (not stride-aligned): internal bitmap path."""
        assert tree.lookup(key_from_string("10.1.3.3")) == 4

    def test_fallbacks(self, tree):
        assert tree.lookup(key_from_string("10.1.9.9")) == 3
        assert tree.lookup(key_from_string("10.9.9.9")) == 2
        assert tree.lookup(key_from_string("9.9.9.9")) == 1

    def test_host_route(self):
        tree = TreeBitmap(32, stride=4)
        tree.insert(Prefix.from_string("1.2.3.4/32"), 9)
        assert tree.lookup(key_from_string("1.2.3.4")) == 9
        assert tree.lookup(key_from_string("1.2.3.5")) is None

    def test_levels_proportional_to_depth(self, tree):
        _nh, levels_shallow = tree.lookup_with_levels(key_from_string("9.9.9.9"))
        _nh, levels_deep = tree.lookup_with_levels(key_from_string("10.1.2.3"))
        assert levels_deep >= levels_shallow

    def test_level_bound(self, tree):
        """Never more than ceil(width/stride) + 1 levels."""
        for address in ("10.1.2.3", "255.255.255.255", "0.0.0.0"):
            _nh, levels = tree.lookup_with_levels(key_from_string(address))
            assert levels <= 32 // 4 + 1


class TestMutation:
    def test_insert_overwrite(self, tree):
        tree.insert(Prefix.from_string("10.0.0.0/8"), 99)
        assert len(tree) == 5
        assert tree.lookup(key_from_string("10.9.9.9")) == 99

    def test_remove(self, tree):
        assert tree.remove(Prefix.from_string("10.1.2.0/24")) == 5
        assert tree.lookup(key_from_string("10.1.2.3")) == 4
        assert len(tree) == 4

    def test_remove_absent(self, tree):
        assert tree.remove(Prefix.from_string("172.16.0.0/12")) is None


class TestEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 3, 4, 5, 8])
    def test_matches_binary_trie_across_strides(self, small_table, rng, stride):
        tree = TreeBitmap.from_table(small_table, stride=stride)
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 300):
            assert tree.lookup(key) == oracle.lookup(key), (stride, hex(key))

    def test_ipv6(self, rng):
        from repro.workloads import ipv6_table

        table = ipv6_table(400, seed=9)
        tree = TreeBitmap.from_table(table, stride=4)
        oracle = BinaryTrie.from_table(table)
        for key in sample_keys(table, rng, 300):
            assert tree.lookup(key) == oracle.lookup(key)


class TestStorage:
    def test_storage_counts(self, tree):
        storage = tree.storage()
        assert storage.nodes == tree.node_count()
        assert storage.prefixes == 5
        assert storage.total_bits > 0
        assert storage.bytes_per_prefix > 0

    def test_storage_grows_with_table(self, small_table):
        small = TreeBitmap.from_table(small_table, stride=4)
        half_table = RoutingTable(width=32)
        for index, (prefix, next_hop) in enumerate(small_table):
            if index % 2 == 0:
                half_table.add(prefix, next_hop)
        half = TreeBitmap.from_table(half_table, stride=4)
        assert small.storage().total_bits > half.storage().total_bits

    def test_bytes_per_prefix_realistic(self, medium_table):
        """BGP-like tables at stride 4 land in the 8-20 B/prefix band
        reported across the Tree Bitmap literature."""
        tree = TreeBitmap.from_table(medium_table, stride=4)
        assert 4.0 < tree.storage().bytes_per_prefix < 25.0
