"""Update-path resource leaks: next-hop refcounts under route churn.

The seed tree leaked one next-hop reference every time a route was
re-announced with an *identical* (gateway, interface): ``announce``
acquired the new reference first, then released the old one only when
the ids differed.  A BGP flap trace (announce/announce/withdraw of the
same route) therefore pinned the interned id forever and slowly filled
the 2**16-entry next-hop table.  These tests model refcounts with a
plain dict and check the table returns to baseline after every churn
pattern hypothesis can invent.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.prefix import Prefix
from repro.router import ForwardingEngine, NextHopInfo
from repro.workloads import synthetic_table


def occupancy(fib):
    return len(fib.next_hops)


# ---------------------------------------------------------------------------
# deterministic flap regression (failed before the fix)
# ---------------------------------------------------------------------------

def test_identical_reannounce_does_not_leak_refcount():
    """Flapping a route back to the same next hop must not pin its id."""
    fib = ForwardingEngine.from_table(synthetic_table(200, seed=7))
    baseline = occupancy(fib)
    # 192.0.2.x is outside the 10.x.y.1 space _default_naming interns,
    # so this route is the only holder of its next hop.
    info = NextHopInfo("192.0.2.1", "eth0")
    prefix = Prefix(0xC6336400 >> 8, 24, 32)  # 198.51.100.0/24

    fib.announce(prefix, info.gateway, info.interface)
    for _ in range(50):  # the flap: identical re-announces
        fib.announce(prefix, info.gateway, info.interface)
        hop_id = fib.next_hops.id_for(info)
        assert hop_id is not None
        assert fib.next_hops.refcount(hop_id) == 1, (
            "identical re-announce must release the duplicate acquire"
        )
    fib.withdraw(prefix)

    assert fib.next_hops.id_for(info) is None
    assert occupancy(fib) == baseline, (
        f"{occupancy(fib) - baseline} next-hop slot(s) leaked by the flap"
    )


def test_replacing_next_hop_still_releases_old_reference():
    """The old-id release on a genuine next-hop change must survive."""
    fib = ForwardingEngine.from_table(synthetic_table(100, seed=8))
    baseline = occupancy(fib)
    prefix = Prefix(0xC0A80000 >> 8, 24, 32)

    fib.announce(prefix, "192.0.2.1", "eth0")
    fib.announce(prefix, "192.0.2.2", "eth1")  # NEXT_HOP change
    assert fib.next_hops.id_for(NextHopInfo("192.0.2.1", "eth0")) is None
    assert occupancy(fib) == baseline + 1
    fib.withdraw(prefix)
    assert occupancy(fib) == baseline


# ---------------------------------------------------------------------------
# hypothesis churn against a dict reference model
# ---------------------------------------------------------------------------

PREFIXES = [
    Prefix(value, length, 32)
    for length in (8, 16, 24)
    for value in range(1 << 3)
]
INFOS = [NextHopInfo(f"192.0.2.{i}", f"eth{i % 4}") for i in range(6)]

OPS = st.lists(
    st.tuples(
        st.sampled_from(["announce", "withdraw"]),
        st.integers(0, len(PREFIXES) - 1),
        st.integers(0, len(INFOS) - 1),
    ),
    max_size=60,
)


def check_against_model(fib, model):
    """The interned table must mirror the {prefix: info} reference."""
    live = Counter(model.values())
    assert occupancy(fib) == len(live)
    for info in INFOS:
        hop_id = fib.next_hops.id_for(info)
        if live[info]:
            assert hop_id is not None
            assert fib.next_hops.refcount(hop_id) == live[info]
        else:
            assert hop_id is None


@given(OPS)
@settings(max_examples=40, deadline=None)
def test_churn_refcounts_match_reference_model(ops):
    # A tiny purge threshold so maintenance purges interleave with churn.
    fib = ForwardingEngine(width=32, dirty_purge_threshold=2)
    model = {}
    for action, prefix_index, info_index in ops:
        prefix = PREFIXES[prefix_index]
        if action == "announce":
            info = INFOS[info_index]
            fib.announce(prefix, info.gateway, info.interface)
            model[prefix] = info
        else:
            fib.withdraw(prefix)
            model.pop(prefix, None)
        check_against_model(fib, model)
    for prefix in list(model):
        fib.withdraw(prefix)
        model.pop(prefix)
    check_against_model(fib, model)
    assert occupancy(fib) == 0
