"""Tests for the update engine: trace application, classification, stats."""

import pytest

from repro.baselines import BinaryTrie
from repro.core import (
    ANNOUNCE,
    WITHDRAW,
    ChiselConfig,
    ChiselLPM,
    MalformedUpdateError,
    UpdateKind,
    UpdateOp,
    UpdateStats,
    apply_trace,
)
from repro.prefix import Prefix, RoutingTable
from repro.workloads import rrc_trace, synthesize_trace

from .conftest import sample_keys


class TestUpdateOp:
    def test_valid_ops(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert UpdateOp(ANNOUNCE, p, 1).op == "announce"
        assert UpdateOp(WITHDRAW, p).op == "withdraw"

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            UpdateOp("modify", Prefix.from_string("10.0.0.0/8"))


class TestMalformedUpdates:
    """Satellite: typed rejection at the trace boundary, not deep inside."""

    def test_negative_next_hop_rejected_at_construction(self):
        with pytest.raises(MalformedUpdateError):
            UpdateOp(ANNOUNCE, Prefix.from_string("10.0.0.0/8"), -3)

    def test_non_integer_next_hop_rejected(self):
        prefix = Prefix.from_string("10.0.0.0/8")
        for bad in (1.5, "7", None, True):
            with pytest.raises(MalformedUpdateError):
                UpdateOp(ANNOUNCE, prefix, bad)

    def test_non_prefix_rejected(self):
        with pytest.raises(MalformedUpdateError):
            UpdateOp(ANNOUNCE, "10.0.0.0/8", 1)

    def test_apply_trace_reports_offset(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=3))
        good = UpdateOp(ANNOUNCE, Prefix.from_string("203.0.113.0/24"), 4)
        bad = UpdateOp(ANNOUNCE, Prefix.from_string("198.51.100.0/24"), 5)
        # Corrupt a frozen record the way a broken deserialiser would.
        object.__setattr__(bad, "next_hop", -9)
        with pytest.raises(MalformedUpdateError) as excinfo:
            apply_trace(engine, [good, good, bad])
        assert excinfo.value.offset == 2
        assert "offset 2" in str(excinfo.value)
        # The engine saw the two valid updates and nothing after the bad one.
        assert engine.get_route(good.prefix) == 4

    def test_apply_trace_rejects_foreign_objects(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=3))
        with pytest.raises(MalformedUpdateError) as excinfo:
            apply_trace(engine, [("announce", "10.0.0.0/8", 1)])
        assert excinfo.value.offset == 0


class TestUpdateStats:
    def test_record_and_fractions(self):
        stats = UpdateStats()
        stats.record(UpdateKind.WITHDRAW)
        stats.record(UpdateKind.WITHDRAW)
        stats.record(UpdateKind.ADD_PC)
        stats.record(None)
        assert stats.total == 4
        assert stats.applied == 3
        assert stats.no_ops == 1
        assert stats.fraction(UpdateKind.WITHDRAW) == pytest.approx(2 / 3)

    def test_incremental_fraction(self):
        stats = UpdateStats()
        for _ in range(999):
            stats.record(UpdateKind.ADD_PC)
        stats.record(UpdateKind.RESETUP)
        assert stats.incremental_fraction == pytest.approx(0.999)

    def test_empty_stats(self):
        stats = UpdateStats()
        assert stats.incremental_fraction == 1.0
        assert stats.updates_per_second == 0.0

    def test_breakdown_keys_are_fig14_categories(self):
        breakdown = UpdateStats().breakdown()
        assert set(breakdown) == {
            "withdraws", "route_flaps", "next_hops",
            "add_pc", "singletons", "resetups",
        }


class TestApplyTrace:
    def test_trace_correctness_vs_oracle(self, small_table, rng):
        """After a full synthetic trace, Chisel must agree with a trie that
        replayed the same updates — the end-to-end update-path check."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=21))
        trace = synthesize_trace(small_table, 3000, seed=22)
        stats = apply_trace(engine, trace)
        assert stats.total == 3000

        # Replay onto a reference table.
        reference = RoutingTable(width=32)
        for prefix, next_hop in small_table:
            reference.add(prefix, next_hop)
        for update in trace:
            if update.op == ANNOUNCE:
                reference.add(update.prefix, update.next_hop)
            else:
                reference.remove(update.prefix)
        oracle = BinaryTrie.from_table(reference)
        for key in sample_keys(reference, rng, 1500):
            assert engine.lookup(key) == oracle.lookup(key), hex(key)

    def test_classification_covers_expected_kinds(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=23))
        trace = synthesize_trace(small_table, 4000, seed=24)
        stats = apply_trace(engine, trace)
        assert stats.counts[UpdateKind.WITHDRAW] > 0
        assert stats.counts[UpdateKind.NEXT_HOP] > 0
        assert stats.counts[UpdateKind.ADD_PC] > 0
        assert stats.counts[UpdateKind.ROUTE_FLAP] > 0

    def test_incremental_fraction_near_one(self, small_table):
        """The paper's headline is ~99.9% incremental on 150K-route tables;
        at this test's deliberately tiny scale (2K routes, proportionally
        far more *new* collapsed prefixes) we still expect > 98%.  The
        Fig. 14 bench asserts the 99.9% figure at realistic scale."""
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=25))
        trace = synthesize_trace(small_table, 5000, seed=26)
        stats = apply_trace(engine, trace)
        assert stats.incremental_fraction > 0.98

    def test_throughput_measured(self, small_table):
        engine = ChiselLPM.build(small_table, ChiselConfig(seed=27))
        trace = synthesize_trace(small_table, 500, seed=28)
        stats = apply_trace(engine, trace)
        assert stats.elapsed_seconds > 0
        assert stats.updates_per_second > 0


class TestRRCTraces:
    def test_named_traces_exist(self, small_table):
        trace = rrc_trace("rrc00 (Amsterdam)", small_table, 100, seed=1)
        assert len(trace) == 100

    def test_unknown_trace_rejected(self, small_table):
        with pytest.raises(KeyError):
            rrc_trace("rrc99", small_table, 10)

    def test_traces_differ_by_site(self, small_table):
        a = rrc_trace("rrc00 (Amsterdam)", small_table, 200, seed=3)
        b = rrc_trace("rrc06 (Otemachi, Japan)", small_table, 200, seed=3)
        assert a != b
