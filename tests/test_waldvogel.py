"""Unit tests for binary search on prefix lengths ([25], Waldvogel)."""

import math

import pytest

from repro.baselines import BinarySearchLengthsLPM, BinaryTrie
from repro.prefix import RoutingTable, key_from_string

from .conftest import sample_keys


@pytest.fixture
def lpm(small_table):
    return BinarySearchLengthsLPM.build(small_table)


class TestCorrectness:
    def test_equivalence_with_oracle(self, small_table, lpm, rng):
        oracle = BinaryTrie.from_table(small_table)
        for key in sample_keys(small_table, rng, 1000):
            assert lpm.lookup(key) == oracle.lookup(key), hex(key)

    def test_marker_bmp_prevents_backtracking(self):
        """The classic trap: a marker leads the search long, nothing is
        there, and the right answer is *shorter* than the marker — the
        precomputed bmp must save it."""
        table = RoutingTable.from_strings([
            ("10.0.0.0/8", 1),
            # /24 deposits markers at shorter levels for OTHER values.
            ("10.99.99.0/24", 2),
            ("99.0.0.0/8", 3),
        ])
        lpm = BinarySearchLengthsLPM.build(table)
        # Key under 10/8 but not under the /24: any marker hit on the way
        # must still resolve to next hop 1.
        assert lpm.lookup(key_from_string("10.99.98.1")) == 1
        assert lpm.lookup(key_from_string("10.99.99.1")) == 2
        assert lpm.lookup(key_from_string("99.1.1.1")) == 3

    def test_single_length_table(self):
        table = RoutingTable.from_strings([("10.0.0.0/8", 1), ("11.0.0.0/8", 2)])
        lpm = BinarySearchLengthsLPM.build(table)
        assert lpm.lookup(key_from_string("10.1.1.1")) == 1
        assert lpm.lookup(key_from_string("12.1.1.1")) is None

    def test_default_route(self):
        table = RoutingTable.from_strings([("0.0.0.0/0", 9), ("10.0.0.0/8", 1)])
        lpm = BinarySearchLengthsLPM.build(table)
        assert lpm.lookup(key_from_string("99.99.99.99")) == 9


class TestComplexity:
    def test_probe_bound_logarithmic(self, small_table, lpm, rng):
        """§2: O(log(max prefix length)) tables searched in the worst case."""
        bound = lpm.worst_case_probes()
        assert bound <= math.ceil(math.log2(len(lpm.levels))) + 1
        for key in sample_keys(small_table, rng, 400):
            _next_hop, probes = lpm.lookup_with_probes(key)
            assert probes <= bound

    def test_probes_beat_linear_scan(self, small_table, lpm):
        assert lpm.worst_case_probes() < len(lpm.levels)

    def test_markers_inflate_storage(self, small_table, lpm):
        """Markers are the cost of the log-time search."""
        assert lpm.marker_count() > 0
        assert lpm.route_count() == len(small_table)

    def test_marker_count_bounded(self, small_table, lpm):
        """Each route deposits at most log2(#levels) markers."""
        bound = len(small_table) * math.ceil(math.log2(len(lpm.levels)))
        assert lpm.marker_count() <= bound
