"""Tests for the synthetic table and trace generators."""

import pytest

from repro.core import ANNOUNCE, WITHDRAW
from repro.workloads import (
    AS_TABLE_SIZES,
    IPV4_LENGTH_WEIGHTS,
    IPV6_LENGTH_WEIGHTS,
    RRC_MIXES,
    TraceMix,
    as_table,
    ipv6_table,
    mean_length,
    normalized,
    synthesize_trace,
    synthetic_table,
)


class TestDistributions:
    def test_normalized_sums_to_one(self):
        assert sum(normalized(IPV4_LENGTH_WEIGHTS).values()) == pytest.approx(1.0)

    def test_ipv4_mode_at_24(self):
        norm = normalized(IPV4_LENGTH_WEIGHTS)
        assert max(norm, key=norm.get) == 24
        assert norm[24] > 0.5

    def test_ipv6_mass_at_32_and_48(self):
        norm = normalized(IPV6_LENGTH_WEIGHTS)
        assert norm[32] + norm[48] > 0.6

    def test_mean_length_bands(self):
        assert 20 < mean_length(IPV4_LENGTH_WEIGHTS) < 24
        assert 36 < mean_length(IPV6_LENGTH_WEIGHTS) < 48


class TestSyntheticTables:
    def test_exact_size(self):
        assert len(synthetic_table(1234, seed=1)) == 1234

    def test_deterministic(self):
        a = dict(iter(synthetic_table(500, seed=9)))
        b = dict(iter(synthetic_table(500, seed=9)))
        assert a == b

    def test_seeds_differ(self):
        a = dict(iter(synthetic_table(500, seed=1)))
        b = dict(iter(synthetic_table(500, seed=2)))
        assert a != b

    def test_length_histogram_tracks_distribution(self):
        table = synthetic_table(20_000, seed=3)
        histogram = table.stats().length_histogram
        fraction_24 = histogram.get(24, 0) / len(table)
        assert 0.45 < fraction_24 < 0.60

    def test_clustering_produces_collapse_merging(self):
        """The generator's raison d'être: collapsed/original ratio in the
        paper's band (~0.5) at stride 4."""
        from repro.analysis.storage import pc_and_cpe_counts

        table = synthetic_table(20_000, seed=4)
        counts = pc_and_cpe_counts(table, 4)
        ratio = counts["collapsed"] / counts["originals"]
        assert 0.40 < ratio < 0.70

    def test_cpe_factor_in_paper_band(self):
        from repro.analysis.storage import pc_and_cpe_counts

        table = synthetic_table(20_000, seed=5)
        counts = pc_and_cpe_counts(table, 4)
        assert 2.0 < counts["cpe_expanded"] / counts["originals"] < 3.5

    def test_as_tables_named_and_sized(self):
        table = as_table("AS1221", scale=0.01)
        assert table.name == "AS1221"
        assert len(table) == int(AS_TABLE_SIZES["AS1221"] * 0.01)

    def test_unknown_as_rejected(self):
        with pytest.raises(KeyError):
            as_table("AS99999")

    def test_ipv6_width(self):
        table = ipv6_table(300, seed=1)
        assert table.width == 128
        assert all(p.length <= 128 for p in table.prefixes())


class TestTraces:
    def test_trace_length(self, small_table):
        trace = synthesize_trace(small_table, 500, seed=1)
        assert len(trace) == 500

    def test_trace_deterministic(self, small_table):
        a = synthesize_trace(small_table, 200, seed=2)
        b = synthesize_trace(small_table, 200, seed=2)
        assert a == b

    def test_trace_consistency(self, small_table):
        """No withdraw of an absent prefix; no announce marked as a flap of
        something still present — the generator tracks live state."""
        trace = synthesize_trace(small_table, 2000, seed=3)
        present = {p for p, _nh in small_table}
        for update in trace:
            if update.op == WITHDRAW:
                assert update.prefix in present
                present.discard(update.prefix)
            else:
                present.add(update.prefix)

    def test_mix_shapes_trace(self, small_table):
        heavy_withdraw = TraceMix(0.9, 0.05, 0.02, 0.02, 0.01)
        trace = synthesize_trace(small_table, 1000, heavy_withdraw, seed=4)
        withdraws = sum(1 for u in trace if u.op == WITHDRAW)
        assert withdraws > 500

    def test_rrc_mixes_complete(self):
        assert len(RRC_MIXES) == 5
        for mix in RRC_MIXES.values():
            total = sum(weight for _name, weight in mix.weights())
            assert total == pytest.approx(1.0, abs=0.05)
